//! E1/E3/E4 (§3.3, §5, §6): the meeting lifecycle — SyD vs the baseline
//! "current practice" calendar, participant-count and calendar-density
//! sweeps, and quorum scheduling.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syd_bench::{calendar_rig, env_ideal, prefill_density, users_of, SlotAlloc};
use syd_calendar::{BaselineCalendar, GroupSpec, MeetingSpec, MeetingStatus};
use syd_types::UserId;

fn bench_meetings(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_meetings");
    group.sample_size(25);

    // Schedule+cancel vs participant count (everyone free → confirmed).
    for n in [2usize, 4, 8, 16] {
        let env = env_ideal();
        let apps = calendar_rig(&env, n);
        let attendees: Vec<UserId> = users_of(&apps)[1..].to_vec();
        let slots = SlotAlloc::new();
        group.bench_with_input(BenchmarkId::new("schedule_cancel", n), &n, |b, _| {
            b.iter(|| {
                let outcome = apps[0]
                    .schedule(MeetingSpec::plain("b", slots.next(), attendees.clone()))
                    .unwrap();
                assert_eq!(outcome.status, MeetingStatus::Confirmed);
                apps[0].cancel(outcome.meeting).unwrap();
            });
        });
    }

    // Free-slot search vs calendar density (the §5 find-empty-slots step
    // over one week).
    for density in [0u64, 30, 60, 90] {
        let env = env_ideal();
        let apps = calendar_rig(&env, 4);
        prefill_density(&apps, 7 * 24, density);
        let users = users_of(&apps);
        group.bench_with_input(
            BenchmarkId::new("find_common_slots_density", density),
            &density,
            |b, _| {
                b.iter(|| {
                    apps[0]
                        .find_common_slots(&users, syd_types::SlotRange::days(0, 7))
                        .unwrap()
                });
            },
        );
    }

    // Quorum scheduling (E4): musts + two OR-groups.
    for group_size in [4usize, 8, 16] {
        let env = env_ideal();
        let apps = calendar_rig(&env, 2 + 2 * group_size);
        let musts = vec![apps[1].user()];
        let g1: Vec<UserId> = apps[2..2 + group_size].iter().map(|a| a.user()).collect();
        let g2: Vec<UserId> = apps[2 + group_size..].iter().map(|a| a.user()).collect();
        let k = (group_size / 2) as u32;
        let slots = SlotAlloc::new();
        group.bench_with_input(
            BenchmarkId::new("quorum_schedule_cancel", group_size),
            &group_size,
            |b, _| {
                b.iter(|| {
                    let spec = MeetingSpec::plain("q", slots.next(), musts.clone())
                        .with_group(GroupSpec::new(g1.clone(), k))
                        .with_group(GroupSpec::new(g2.clone(), 2));
                    let outcome = apps[0].schedule(spec).unwrap();
                    assert_eq!(outcome.status, MeetingStatus::Confirmed);
                    apps[0].cancel(outcome.meeting).unwrap();
                });
            },
        );
    }

    // E1: the same "set up a meeting" task on the baseline calendar
    // (invite + manual accepts + commit), for the latency comparison; the
    // message/byte comparison is in the `experiments` harness binary.
    for n in [2usize, 4, 8, 16] {
        let env = env_ideal();
        let baselines: Vec<Arc<BaselineCalendar>> = (0..n)
            .map(|i| {
                BaselineCalendar::install(&env.device(&format!("b{i}"), "pw").unwrap()).unwrap()
            })
            .collect();
        let participants: Vec<UserId> = baselines[1..].iter().map(|b| b.user()).collect();
        let slots = SlotAlloc::new();
        group.bench_with_input(BenchmarkId::new("baseline_schedule", n), &n, |b, _| {
            b.iter(|| {
                let slot = slots.next();
                let proposal = baselines[0].propose(slot, &participants).unwrap();
                // The "humans" all accept instantly (best case for the
                // baseline — reality adds hours).
                for app in &baselines[1..] {
                    app.accept(proposal).unwrap();
                }
                // Wait for the commit to land.
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
                loop {
                    match baselines[0].proposal_status(proposal) {
                        Some(syd_calendar::baseline::ProposalStatus::Scheduled) => break,
                        _ if std::time::Instant::now() > deadline => panic!("no commit"),
                        _ => std::thread::yield_now(),
                    }
                }
                baselines[0].cancel(proposal, &participants, slot).unwrap();
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_meetings);
criterion_main!(benches);
