//! Time: calendar slots for the application, timestamps for the middleware.
//!
//! Two notions of time coexist, as in the paper:
//!
//! * **Calendar time** — users schedule meetings into discrete slots
//!   ([`TimeSlot`] = [`Day`] × [`SlotIndex`]). The prototype's GUI offered
//!   day/hour granularity; we default to [`SLOTS_PER_DAY`] = 24 slots per
//!   day but nothing depends on that constant except formatting.
//! * **Middleware time** — link creation/expiry times and RPC deadlines are
//!   [`Timestamp`]s (microseconds) read from a [`Clock`]. Tests and
//!   deterministic benches use the manually-advanced [`SimClock`]; live runs
//!   use [`SystemClock`].

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of schedulable slots per calendar day (one per hour).
pub const SLOTS_PER_DAY: u16 = 24;

/// A calendar day, counted from an arbitrary epoch day 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Day(pub u32);

impl Day {
    /// Day `n` of the simulation epoch.
    pub const fn new(n: u32) -> Self {
        Self(n)
    }

    /// The next calendar day.
    pub const fn next(self) -> Day {
        Day(self.0 + 1)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}", self.0)
    }
}

/// An intra-day slot index, `0..SLOTS_PER_DAY`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SlotIndex(pub u16);

impl SlotIndex {
    /// Slot `n` within a day. Panics in debug builds if out of range.
    pub fn new(n: u16) -> Self {
        debug_assert!(n < SLOTS_PER_DAY, "slot index {n} out of range");
        Self(n)
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:00", self.0)
    }
}

/// One schedulable calendar slot: a (day, slot) pair.
///
/// `TimeSlot` has a total order (day-major) and a dense encoding
/// ([`TimeSlot::ordinal`]) used as a store key and for range scans — "free
/// slots between dates d1 and d2" (§5) is an ordinal range query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimeSlot {
    /// Calendar day.
    pub day: Day,
    /// Slot within the day.
    pub slot: SlotIndex,
}

impl TimeSlot {
    /// Builds a slot from day and intra-day indices.
    pub fn new(day: u32, slot: u16) -> Self {
        Self {
            day: Day::new(day),
            slot: SlotIndex::new(slot),
        }
    }

    /// Dense ordinal: `day * SLOTS_PER_DAY + slot`.
    pub fn ordinal(self) -> u64 {
        self.day.0 as u64 * SLOTS_PER_DAY as u64 + self.slot.0 as u64
    }

    /// Inverse of [`TimeSlot::ordinal`].
    pub fn from_ordinal(ordinal: u64) -> Self {
        TimeSlot::new(
            (ordinal / SLOTS_PER_DAY as u64) as u32,
            (ordinal % SLOTS_PER_DAY as u64) as u16,
        )
    }

    /// The immediately following slot (rolls over at midnight).
    pub fn succ(self) -> TimeSlot {
        TimeSlot::from_ordinal(self.ordinal() + 1)
    }
}

impl fmt::Display for TimeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.day, self.slot)
    }
}

/// A half-open range of calendar slots `[start, end)`, e.g. "between dates
/// d1 and d2" in the paper's meeting-setup scenario.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SlotRange {
    /// First slot included in the range.
    pub start: TimeSlot,
    /// First slot excluded from the range.
    pub end: TimeSlot,
}

impl SlotRange {
    /// Builds a range; `start` must not exceed `end`.
    pub fn new(start: TimeSlot, end: TimeSlot) -> Self {
        assert!(
            start.ordinal() <= end.ordinal(),
            "slot range start {start} after end {end}"
        );
        Self { start, end }
    }

    /// All slots of `day`.
    pub fn whole_day(day: u32) -> Self {
        SlotRange::new(TimeSlot::new(day, 0), TimeSlot::new(day + 1, 0))
    }

    /// All slots from day `d1` up to but excluding day `d2`.
    pub fn days(d1: u32, d2: u32) -> Self {
        SlotRange::new(TimeSlot::new(d1, 0), TimeSlot::new(d2, 0))
    }

    /// Number of slots in the range.
    pub fn len(&self) -> u64 {
        self.end.ordinal() - self.start.ordinal()
    }

    /// True iff the range contains no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff `slot` falls inside the range.
    pub fn contains(&self, slot: TimeSlot) -> bool {
        let o = slot.ordinal();
        self.start.ordinal() <= o && o < self.end.ordinal()
    }

    /// Iterates over every slot in the range, in order.
    pub fn iter(&self) -> impl Iterator<Item = TimeSlot> {
        (self.start.ordinal()..self.end.ordinal()).map(TimeSlot::from_ordinal)
    }
}

impl fmt::Display for SlotRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

/// Middleware timestamp: microseconds since the clock's epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Timestamp at `micros` microseconds past the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This timestamp advanced by `d` (saturating).
    pub fn after(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_micros() as u64))
    }

    /// Duration from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}µs", self.0)
    }
}

/// Source of middleware time.
///
/// Implementations must be cheap and thread-safe: the router, the event
/// handler's expiry scanner and every RPC deadline consult the clock.
pub trait Clock: Send + Sync + 'static {
    /// Current time.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time relative to process start.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.origin.elapsed().as_micros() as u64)
    }
}

/// Manually advanced clock for deterministic tests and benches.
///
/// Cloning shares the underlying counter, so a test can hold one handle
/// while the middleware holds another.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock starting at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.micros
            .fetch_add(d.as_micros() as u64, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute time (must not move backwards).
    pub fn set(&self, t: Timestamp) {
        let prev = self.micros.swap(t.0, Ordering::SeqCst);
        debug_assert!(prev <= t.0, "SimClock moved backwards: {prev} -> {}", t.0);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn slot_ordinal_round_trip() {
        for day in [0u32, 1, 7, 365] {
            for slot in 0..SLOTS_PER_DAY {
                let ts = TimeSlot::new(day, slot);
                assert_eq!(TimeSlot::from_ordinal(ts.ordinal()), ts);
            }
        }
    }

    #[test]
    fn slot_order_is_day_major() {
        assert!(TimeSlot::new(0, 23) < TimeSlot::new(1, 0));
        assert!(TimeSlot::new(2, 5) < TimeSlot::new(2, 6));
        assert_eq!(TimeSlot::new(0, 23).succ(), TimeSlot::new(1, 0));
    }

    #[test]
    fn range_contains_and_len() {
        let r = SlotRange::days(1, 3);
        assert_eq!(r.len(), 2 * SLOTS_PER_DAY as u64);
        assert!(!r.is_empty());
        assert!(r.contains(TimeSlot::new(1, 0)));
        assert!(r.contains(TimeSlot::new(2, 23)));
        assert!(!r.contains(TimeSlot::new(3, 0)));
        assert!(!r.contains(TimeSlot::new(0, 23)));
    }

    #[test]
    fn range_iterates_in_order() {
        let r = SlotRange::new(TimeSlot::new(0, 22), TimeSlot::new(1, 2));
        let slots: Vec<_> = r.iter().collect();
        assert_eq!(
            slots,
            vec![
                TimeSlot::new(0, 22),
                TimeSlot::new(0, 23),
                TimeSlot::new(1, 0),
                TimeSlot::new(1, 1),
            ]
        );
    }

    #[test]
    fn empty_range() {
        let r = SlotRange::new(TimeSlot::new(1, 1), TimeSlot::new(1, 1));
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "after end")]
    fn reversed_range_panics() {
        let _ = SlotRange::new(TimeSlot::new(2, 0), TimeSlot::new(1, 0));
    }

    #[test]
    fn sim_clock_advances_deterministically() {
        let clock = SimClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now(), Timestamp::from_micros(0));
        handle.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Timestamp::from_micros(5_000));
        handle.set(Timestamp::from_micros(10_000));
        assert_eq!(clock.now().as_micros(), 10_000);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_micros(100);
        let later = t.after(Duration::from_micros(50));
        assert_eq!(later.as_micros(), 150);
        assert_eq!(later.since(t), Duration::from_micros(50));
        assert_eq!(t.since(later), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TimeSlot::new(3, 9)), "day 3 09:00");
        assert_eq!(
            format!("{}", SlotRange::whole_day(2)),
            "[day 2 00:00 .. day 3 00:00)"
        );
        assert_eq!(format!("{}", Timestamp::from_micros(7)), "t+7µs");
    }
}
