//! Unified error type for every SyD layer.
//!
//! Errors cross the simulated network, so [`SydError`] is cheap to construct,
//! `Clone`, and round-trips through the wire codec via a stable
//! `(kind, message)` projection (see [`SydError::kind_code`] and
//! [`SydError::from_wire`]).

use core::fmt;

use crate::id::{LinkId, NodeAddr, RequestId, ServiceName, UserId};

/// Result alias used throughout the workspace.
pub type SydResult<T> = Result<T, SydError>;

/// Any failure produced by the SyD middleware or its substrates.
#[derive(Clone, Debug, PartialEq)]
pub enum SydError {
    // ---- transport (syd-net) ----
    /// Destination endpoint is not registered on the network.
    Unreachable(NodeAddr),
    /// Destination is registered but currently disconnected and has no proxy.
    Disconnected(NodeAddr),
    /// An RPC did not complete within its deadline.
    Timeout(RequestId),
    /// The network (or a device runtime) has been shut down.
    Shutdown,

    // ---- codec / protocol (syd-wire) ----
    /// Malformed bytes on the wire.
    Codec(String),
    /// Structurally valid but semantically wrong message (bad arity, missing
    /// field, unexpected reply…).
    Protocol(String),

    // ---- store (syd-store) ----
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column does not exist in the table's schema.
    NoSuchColumn(String),
    /// Row value violates the schema (wrong type / arity / uniqueness).
    SchemaViolation(String),
    /// A row lock could not be acquired within the bounded wait.
    LockTimeout(String),
    /// The enclosing transaction was aborted (deadlock avoidance, explicit
    /// rollback, or trigger veto).
    TxnAborted(String),

    // ---- kernel (syd-core) ----
    /// Name not found in the SyDDirectory.
    NotRegistered(String),
    /// Service/method not registered with the SyDListener.
    NoSuchService(ServiceName, String),
    /// A negotiation constraint (and / or / xor / k-of-n) was not satisfied.
    ConstraintFailed(String),
    /// Link operation referenced a link that does not exist.
    NoSuchLink(LinkId),
    /// Authentication failed (§5.4: unknown user or bad credentials).
    AuthFailed(UserId),

    // ---- applications ----
    /// Application-level failure with a human-readable message.
    App(String),
}

impl SydError {
    /// Builds the canonical type-mismatch error used by [`crate::Value`]
    /// accessors.
    pub fn type_mismatch(expected: &str, got: &str) -> Self {
        SydError::Protocol(format!("type mismatch: expected {expected}, got {got}"))
    }

    /// True for failures that are transient from the caller's perspective
    /// (worth retrying at the RPC layer): timeouts, lock timeouts and
    /// disconnections that a proxy may shortly absorb.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SydError::Timeout(_) | SydError::LockTimeout(_) | SydError::Disconnected(_)
        )
    }

    /// Stable numeric code identifying the error kind on the wire.
    pub fn kind_code(&self) -> u8 {
        match self {
            SydError::Unreachable(_) => 1,
            SydError::Disconnected(_) => 2,
            SydError::Timeout(_) => 3,
            SydError::Shutdown => 4,
            SydError::Codec(_) => 5,
            SydError::Protocol(_) => 6,
            SydError::NoSuchTable(_) => 7,
            SydError::NoSuchColumn(_) => 8,
            SydError::SchemaViolation(_) => 9,
            SydError::LockTimeout(_) => 10,
            SydError::TxnAborted(_) => 11,
            SydError::NotRegistered(_) => 12,
            SydError::NoSuchService(_, _) => 13,
            SydError::ConstraintFailed(_) => 14,
            SydError::NoSuchLink(_) => 15,
            SydError::AuthFailed(_) => 16,
            SydError::App(_) => 17,
        }
    }

    /// Message component carried on the wire next to [`Self::kind_code`].
    pub fn wire_message(&self) -> String {
        match self {
            SydError::Unreachable(addr) | SydError::Disconnected(addr) => addr.raw().to_string(),
            SydError::Timeout(req) => req.raw().to_string(),
            SydError::Shutdown => String::new(),
            SydError::Codec(m)
            | SydError::Protocol(m)
            | SydError::NoSuchTable(m)
            | SydError::NoSuchColumn(m)
            | SydError::SchemaViolation(m)
            | SydError::LockTimeout(m)
            | SydError::TxnAborted(m)
            | SydError::NotRegistered(m)
            | SydError::ConstraintFailed(m)
            | SydError::App(m) => m.clone(),
            SydError::NoSuchService(svc, method) => format!("{svc}/{method}"),
            SydError::NoSuchLink(id) => id.raw().to_string(),
            SydError::AuthFailed(user) => user.raw().to_string(),
        }
    }

    /// Reconstructs an error from its wire projection. Unknown codes decode
    /// as [`SydError::Protocol`] so old peers never panic on new errors.
    pub fn from_wire(code: u8, message: String) -> Self {
        fn num(message: &str) -> u64 {
            message.parse().unwrap_or(0)
        }
        match code {
            1 => SydError::Unreachable(NodeAddr::new(num(&message))),
            2 => SydError::Disconnected(NodeAddr::new(num(&message))),
            3 => SydError::Timeout(RequestId::new(num(&message))),
            4 => SydError::Shutdown,
            5 => SydError::Codec(message),
            6 => SydError::Protocol(message),
            7 => SydError::NoSuchTable(message),
            8 => SydError::NoSuchColumn(message),
            9 => SydError::SchemaViolation(message),
            10 => SydError::LockTimeout(message),
            11 => SydError::TxnAborted(message),
            12 => SydError::NotRegistered(message),
            13 => match message.split_once('/') {
                Some((svc, method)) => {
                    SydError::NoSuchService(ServiceName::new(svc), method.to_owned())
                }
                None => SydError::NoSuchService(ServiceName::new(message), String::new()),
            },
            14 => SydError::ConstraintFailed(message),
            15 => SydError::NoSuchLink(LinkId::new(num(&message))),
            16 => SydError::AuthFailed(UserId::new(num(&message))),
            17 => SydError::App(message),
            other => SydError::Protocol(format!("unknown error code {other}: {message}")),
        }
    }
}

impl fmt::Display for SydError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SydError::Unreachable(addr) => write!(f, "endpoint {addr} is not on the network"),
            SydError::Disconnected(addr) => write!(f, "endpoint {addr} is disconnected"),
            SydError::Timeout(req) => write!(f, "request {req} timed out"),
            SydError::Shutdown => f.write_str("network is shut down"),
            SydError::Codec(m) => write!(f, "codec error: {m}"),
            SydError::Protocol(m) => write!(f, "protocol error: {m}"),
            SydError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            SydError::NoSuchColumn(c) => write!(f, "no such column `{c}`"),
            SydError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            SydError::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            SydError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            SydError::NotRegistered(n) => write!(f, "`{n}` is not registered in the directory"),
            SydError::NoSuchService(svc, method) => {
                write!(f, "no service `{svc}` with method `{method}`")
            }
            SydError::ConstraintFailed(m) => write!(f, "negotiation constraint failed: {m}"),
            SydError::NoSuchLink(id) => write!(f, "no such link {id}"),
            SydError::AuthFailed(user) => write!(f, "authentication failed for {user}"),
            SydError::App(m) => write!(f, "application error: {m}"),
        }
    }
}

impl std::error::Error for SydError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn all_samples() -> Vec<SydError> {
        vec![
            SydError::Unreachable(NodeAddr::new(4)),
            SydError::Disconnected(NodeAddr::new(5)),
            SydError::Timeout(RequestId::new(6)),
            SydError::Shutdown,
            SydError::Codec("bad byte".into()),
            SydError::Protocol("arity".into()),
            SydError::NoSuchTable("slots".into()),
            SydError::NoSuchColumn("day".into()),
            SydError::SchemaViolation("dup key".into()),
            SydError::LockTimeout("slot 3".into()),
            SydError::TxnAborted("veto".into()),
            SydError::NotRegistered("phil".into()),
            SydError::NoSuchService(ServiceName::new("calendar"), "reserve".into()),
            SydError::ConstraintFailed("xor got 2".into()),
            SydError::NoSuchLink(LinkId::new(8)),
            SydError::AuthFailed(UserId::new(9)),
            SydError::App("quorum".into()),
        ]
    }

    #[test]
    fn wire_round_trip_preserves_every_kind() {
        for err in all_samples() {
            let back = SydError::from_wire(err.kind_code(), err.wire_message());
            assert_eq!(back, err);
        }
    }

    #[test]
    fn kind_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for err in all_samples() {
            assert!(seen.insert(err.kind_code()), "duplicate code for {err:?}");
        }
    }

    #[test]
    fn unknown_code_degrades_to_protocol_error() {
        let e = SydError::from_wire(200, "future".into());
        assert!(matches!(e, SydError::Protocol(_)));
        assert!(e.to_string().contains("200"));
    }

    #[test]
    fn transient_classification() {
        assert!(SydError::Timeout(RequestId::new(1)).is_transient());
        assert!(SydError::LockTimeout("x".into()).is_transient());
        assert!(SydError::Disconnected(NodeAddr::new(1)).is_transient());
        assert!(!SydError::Shutdown.is_transient());
        assert!(!SydError::AuthFailed(UserId::new(1)).is_transient());
    }

    #[test]
    fn display_mentions_key_detail() {
        assert!(SydError::NoSuchTable("slots".into())
            .to_string()
            .contains("slots"));
        assert!(SydError::NoSuchService(ServiceName::new("cal"), "m".into())
            .to_string()
            .contains("cal"));
    }

    #[test]
    fn no_such_service_without_slash_decodes() {
        let e = SydError::from_wire(13, "plain".into());
        assert_eq!(
            e,
            SydError::NoSuchService(ServiceName::new("plain"), String::new())
        );
    }
}
