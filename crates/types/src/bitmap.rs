//! Availability bitmaps: a calendar window's free slots as packed bits.
//!
//! The paper's meeting-setup scenario asks every attendee for "available
//! time slots between dates d1 and d2" (§5). Shipping that answer as a
//! list of slot ordinals costs a varint per free slot — tens of bytes per
//! mostly-free day — and intersecting `n` replies is an `O(n·m)`
//! membership scan. A [`SlotBitmap`] packs the same window into one bit
//! per slot (a whole [`SLOTS_PER_DAY`](crate::time::SLOTS_PER_DAY)-slot day fits comfortably in a
//! single 64-bit word), so a fortnight's availability is ~42 bytes on the
//! wire regardless of density, and intersection is a bitwise AND.
//!
//! Bit `i` covers slot ordinal `start + i`; a **set** bit means *free*.
//! Bits outside the window read as busy, which makes intersection over
//! mismatched windows conservative — exactly what a scheduler wants.

use core::fmt;

use crate::error::{SydError, SydResult};
use crate::time::{SlotRange, TimeSlot};

/// Packed free/busy availability over a half-open slot window.
///
/// Invariants: `words.len() == len.div_ceil(64)` and every bit at index
/// `>= len` is zero, so whole-word operations never leak phantom slots.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SlotBitmap {
    /// Ordinal of the first covered slot (bit 0).
    start: u64,
    /// Number of covered slots (bits).
    len: u32,
    /// Packed bits, least-significant bit first within each word.
    words: Vec<u64>,
}

impl SlotBitmap {
    /// An all-busy bitmap over `range` (no bit set).
    pub fn empty(range: SlotRange) -> SlotBitmap {
        let (start, len) = range_bounds(range);
        SlotBitmap {
            start,
            len,
            words: vec![0; word_count(len)],
        }
    }

    /// An all-free bitmap over `range` (every in-window bit set).
    pub fn all_free(range: SlotRange) -> SlotBitmap {
        let (start, len) = range_bounds(range);
        let mut words = vec![u64::MAX; word_count(len)];
        mask_trailing(&mut words, len);
        SlotBitmap { start, len, words }
    }

    /// Builds a bitmap over `range` with exactly `free` marked free.
    /// Slots outside the window are ignored.
    pub fn from_free_slots<I>(range: SlotRange, free: I) -> SlotBitmap
    where
        I: IntoIterator<Item = TimeSlot>,
    {
        let mut bm = SlotBitmap::empty(range);
        for slot in free {
            bm.set_free(slot);
        }
        bm
    }

    /// Ordinal of the first covered slot.
    pub fn start_ordinal(&self) -> u64 {
        self.start
    }

    /// Number of covered slots.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True iff the window covers no slots at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered window as a half-open [`SlotRange`].
    pub fn range(&self) -> SlotRange {
        SlotRange::new(
            TimeSlot::from_ordinal(self.start),
            TimeSlot::from_ordinal(self.start + self.len as u64),
        )
    }

    /// Marks `slot` free. Out-of-window slots are ignored.
    pub fn set_free(&mut self, slot: TimeSlot) {
        if let Some((w, b)) = self.position(slot) {
            self.words[w] |= 1 << b;
        }
    }

    /// Marks `slot` busy. Out-of-window slots are ignored.
    pub fn set_busy(&mut self, slot: TimeSlot) {
        if let Some((w, b)) = self.position(slot) {
            self.words[w] &= !(1 << b);
        }
    }

    /// True iff `slot` is inside the window and marked free.
    pub fn is_free(&self, slot: TimeSlot) -> bool {
        self.position(slot)
            .is_some_and(|(w, b)| self.words[w] & (1 << b) != 0)
    }

    /// Number of free slots in the window.
    pub fn count_free(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Intersects in place: a slot stays free only if free in **both**
    /// maps. `other` may cover a different window — its out-of-window
    /// slots read as busy, so the result is conservative. One AND per
    /// 64 slots, however dense the calendars.
    pub fn and_assign(&mut self, other: &SlotBitmap) {
        for (w, word) in self.words.iter_mut().enumerate() {
            *word &= other.window(self.start + (w as u64) * 64);
        }
    }

    /// The 64 bits starting at `from_ordinal`: bit `j` of the result is
    /// this map's free bit for slot `from_ordinal + j` (busy if outside
    /// the window).
    fn window(&self, from_ordinal: u64) -> u64 {
        if from_ordinal < self.start {
            let lead = self.start - from_ordinal;
            if lead >= 64 {
                return 0;
            }
            // The first `lead` result bits precede the window.
            return self.window(self.start) << lead;
        }
        let off = from_ordinal - self.start;
        let k = (off / 64) as usize;
        let r = (off % 64) as u32;
        let lo = self.words.get(k).copied().unwrap_or(0) >> r;
        let hi = if r == 0 {
            0
        } else {
            self.words.get(k + 1).copied().unwrap_or(0) << (64 - r)
        };
        lo | hi
    }

    /// Iterates the free slots in ascending order.
    pub fn free_slots(&self) -> impl Iterator<Item = TimeSlot> + '_ {
        let start = self.start;
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            let base = start + (w as u64) * 64;
            BitIter(word).map(move |b| TimeSlot::from_ordinal(base + b as u64))
        })
    }

    /// The free slots collected into a vector, ascending.
    pub fn to_slots(&self) -> Vec<TimeSlot> {
        self.free_slots().collect()
    }

    /// Serialises to the fixed transport layout: `start` (8 bytes LE),
    /// `len` (4 bytes LE), then one 8-byte LE word per 64 slots. Size is
    /// a function of the window alone, never of how full the calendar is.
    pub fn pack(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.words.len() * 8);
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Inverse of [`SlotBitmap::pack`]. Rejects truncated buffers and
    /// set bits beyond `len` — the layout is canonical, so a re-pack of
    /// the result is byte-identical to the input.
    pub fn unpack(bytes: &[u8]) -> SydResult<SlotBitmap> {
        let err = |what: &str| SydError::Protocol(format!("slot bitmap: {what}"));
        if bytes.len() < 12 {
            return Err(err("truncated header"));
        }
        let le_u64 = |chunk: &[u8]| {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            u64::from_le_bytes(b)
        };
        let start = le_u64(&bytes[0..8]);
        let mut len_b = [0u8; 4];
        len_b.copy_from_slice(&bytes[8..12]);
        let len = u32::from_le_bytes(len_b);
        if bytes.len() != 12 + word_count(len) * 8 {
            return Err(err("length mismatch"));
        }
        let words: Vec<u64> = bytes[12..].chunks_exact(8).map(le_u64).collect();
        SlotBitmap::from_raw_parts(start, len, words)
    }

    /// The packed words, least-significant bit first (for codecs).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from its raw parts, enforcing the invariants:
    /// the word count must match `len` and no bit at index `>= len` may
    /// be set (the representation is canonical).
    pub fn from_raw_parts(start: u64, len: u32, words: Vec<u64>) -> SydResult<SlotBitmap> {
        let err = |what: &str| SydError::Protocol(format!("slot bitmap: {what}"));
        if words.len() != word_count(len) {
            return Err(err("word count mismatch"));
        }
        let mut masked = words.clone();
        mask_trailing(&mut masked, len);
        if masked != words {
            return Err(err("set bits beyond window"));
        }
        Ok(SlotBitmap { start, len, words })
    }

    fn position(&self, slot: TimeSlot) -> Option<(usize, u32)> {
        let ord = slot.ordinal();
        if ord < self.start || ord - self.start >= self.len as u64 {
            return None;
        }
        let off = ord - self.start;
        Some(((off / 64) as usize, (off % 64) as u32))
    }
}

impl fmt::Debug for SlotBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SlotBitmap({}, {} free of {})",
            self.range(),
            self.count_free(),
            self.len
        )
    }
}

/// `(start ordinal, slot count)` of a half-open range, saturating the
/// count at `u32::MAX` (a window that large is ~490k years of hours).
fn range_bounds(range: SlotRange) -> (u64, u32) {
    let start = range.start.ordinal();
    let len = range.end.ordinal().saturating_sub(start);
    (start, u32::try_from(len).unwrap_or(u32::MAX))
}

/// Words needed for `len` bits.
fn word_count(len: u32) -> usize {
    (len as usize).div_ceil(64)
}

/// Zeroes every bit at index `>= len` in the final word.
fn mask_trailing(words: &mut [u64], len: u32) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Iterator over the set-bit indices of one word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::time::SLOTS_PER_DAY;

    fn day_range(from: u32, to: u32) -> SlotRange {
        SlotRange::days(from, to)
    }

    #[test]
    fn all_free_and_empty_bounds() {
        let r = day_range(1, 3);
        let free = SlotBitmap::all_free(r);
        assert_eq!(free.count_free(), 2 * SLOTS_PER_DAY as u32);
        assert!(free.is_free(TimeSlot::new(1, 0)));
        assert!(free.is_free(TimeSlot::new(2, SLOTS_PER_DAY - 1)));
        assert!(!free.is_free(TimeSlot::new(0, SLOTS_PER_DAY - 1)));
        assert!(!free.is_free(TimeSlot::new(3, 0)));
        let empty = SlotBitmap::empty(r);
        assert_eq!(empty.count_free(), 0);
        assert_eq!(empty.range(), r);
    }

    #[test]
    fn set_and_clear_round_trip() {
        let mut bm = SlotBitmap::empty(day_range(0, 2));
        let slot = TimeSlot::new(1, 5);
        bm.set_free(slot);
        assert!(bm.is_free(slot));
        assert_eq!(bm.to_slots(), vec![slot]);
        bm.set_busy(slot);
        assert!(!bm.is_free(slot));
        // Out-of-window writes are ignored, not panics.
        bm.set_free(TimeSlot::new(9, 0));
        assert_eq!(bm.count_free(), 0);
    }

    #[test]
    fn intersection_matches_set_semantics() {
        let r = day_range(0, 4);
        let a_free = [
            TimeSlot::new(0, 3),
            TimeSlot::new(1, 10),
            TimeSlot::new(3, 23),
        ];
        let b_free = [
            TimeSlot::new(1, 10),
            TimeSlot::new(3, 23),
            TimeSlot::new(2, 0),
        ];
        let mut a = SlotBitmap::from_free_slots(r, a_free);
        let b = SlotBitmap::from_free_slots(r, b_free);
        a.and_assign(&b);
        assert_eq!(
            a.to_slots(),
            vec![TimeSlot::new(1, 10), TimeSlot::new(3, 23)]
        );
    }

    #[test]
    fn intersection_over_mismatched_windows_is_conservative() {
        // a covers days 0..4, b only day 1 — everything outside b's
        // window must come out busy, whatever a says.
        let mut a = SlotBitmap::all_free(day_range(0, 4));
        let b = SlotBitmap::all_free(day_range(1, 2));
        a.and_assign(&b);
        let expect: Vec<TimeSlot> = day_range(1, 2).iter().collect();
        assert_eq!(a.to_slots(), expect);

        // And the offset case: b starts *before* a.
        let mut c = SlotBitmap::all_free(day_range(2, 5));
        let d = SlotBitmap::all_free(day_range(0, 3));
        c.and_assign(&d);
        let expect: Vec<TimeSlot> = day_range(2, 3).iter().collect();
        assert_eq!(c.to_slots(), expect);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let r = day_range(3, 17);
        let mut bm = SlotBitmap::all_free(r);
        bm.set_busy(TimeSlot::new(5, 9));
        bm.set_busy(TimeSlot::new(16, 0));
        let bytes = bm.pack();
        // 14 days of hourly slots: 12-byte header + 6 words.
        assert_eq!(
            bytes.len(),
            12 + 8 * ((14 * SLOTS_PER_DAY as usize).div_ceil(64))
        );
        let back = SlotBitmap::unpack(&bytes).unwrap();
        assert_eq!(back, bm);
        assert_eq!(back.pack(), bytes);
    }

    #[test]
    fn unpack_rejects_malformed_buffers() {
        assert!(SlotBitmap::unpack(&[1, 2, 3]).is_err());
        let mut bytes = SlotBitmap::all_free(day_range(0, 1)).pack();
        bytes.pop();
        assert!(SlotBitmap::unpack(&bytes).is_err());
        // A set bit beyond `len` breaks canonicality.
        let mut bytes = SlotBitmap::empty(day_range(0, 1)).pack();
        let last = bytes.len() - 1;
        bytes[last] = 0x80;
        assert!(SlotBitmap::unpack(&bytes).is_err());
    }

    #[test]
    fn fixed_size_beats_ordinal_lists_when_dense() {
        // The win the paper's scenario cares about: a mostly-free
        // fortnight costs the same bytes as an empty one.
        let r = day_range(0, 14);
        let dense = SlotBitmap::all_free(r);
        let sparse = SlotBitmap::empty(r);
        assert_eq!(dense.pack().len(), sparse.pack().len());
    }
}
