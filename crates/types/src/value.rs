//! Dynamic value model for remote invocations and the embedded store.
//!
//! SyD device objects are independent — they share no global schema — so
//! method arguments, query results and stored cells travel as self-describing
//! [`Value`]s, the same role JDBC result sets and Java serialization played
//! in the paper's prototype.

use core::fmt;
use std::collections::BTreeMap;

use crate::error::{SydError, SydResult};

/// A self-describing dynamic value.
///
/// `Value` is the lingua franca between SyD layers: store cells, RPC
/// arguments, aggregated group results and link trigger payloads are all
/// `Value`s. A `BTreeMap` backs [`Value::Map`] so encodings are canonical
/// (deterministic iteration order), which the wire codec and the store's
/// snapshot format rely on.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum Value {
    /// Absence of a value (SQL `NULL`).
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Opaque byte blob (e.g. encrypted credentials).
    Bytes(Vec<u8>),
    /// Ordered list of values.
    List(Vec<Value>),
    /// String-keyed map with canonical (sorted) key order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Shorthand for a list value.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Shorthand for a map value from `(key, value)` pairs.
    pub fn map(entries: impl IntoIterator<Item = (&'static str, Value)>) -> Self {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Human-readable name of the variant, used in type-mismatch errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts a bool, or a type-mismatch error.
    pub fn as_bool(&self) -> SydResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(SydError::type_mismatch("bool", other.type_name())),
        }
    }

    /// Extracts an i64, or a type-mismatch error.
    pub fn as_i64(&self) -> SydResult<i64> {
        match self {
            Value::I64(n) => Ok(*n),
            other => Err(SydError::type_mismatch("i64", other.type_name())),
        }
    }

    /// Extracts an f64 (widening from i64), or a type-mismatch error.
    pub fn as_f64(&self) -> SydResult<f64> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            other => Err(SydError::type_mismatch("f64", other.type_name())),
        }
    }

    /// Extracts a string slice, or a type-mismatch error.
    pub fn as_str(&self) -> SydResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SydError::type_mismatch("str", other.type_name())),
        }
    }

    /// Extracts a byte slice, or a type-mismatch error.
    pub fn as_bytes(&self) -> SydResult<&[u8]> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(SydError::type_mismatch("bytes", other.type_name())),
        }
    }

    /// Extracts a list slice, or a type-mismatch error.
    pub fn as_list(&self) -> SydResult<&[Value]> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(SydError::type_mismatch("list", other.type_name())),
        }
    }

    /// Extracts a map reference, or a type-mismatch error.
    pub fn as_map(&self) -> SydResult<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(SydError::type_mismatch("map", other.type_name())),
        }
    }

    /// Looks up `key` in a map value; `Null` and missing keys both yield an
    /// error naming the key, so callers get actionable diagnostics.
    pub fn get(&self, key: &str) -> SydResult<&Value> {
        self.as_map()?
            .get(key)
            .ok_or_else(|| SydError::Protocol(format!("missing map key `{key}`")))
    }

    /// Consumes the value, extracting an owned `String`.
    pub fn into_string(self) -> SydResult<String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SydError::type_mismatch("str", other.type_name())),
        }
    }

    /// Consumes the value, extracting an owned list.
    pub fn into_list(self) -> SydResult<Vec<Value>> {
        match self {
            Value::List(items) => Ok(items),
            other => Err(SydError::type_mismatch("list", other.type_name())),
        }
    }

    /// Consumes the value, extracting owned bytes.
    pub fn into_bytes(self) -> SydResult<Vec<u8>> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(SydError::type_mismatch("bytes", other.type_name())),
        }
    }

    /// Total ordering usable for store indexes and `ORDER BY`-style sorts.
    ///
    /// Variants order by kind first (`Null < Bool < I64/F64 < Str < Bytes <
    /// List < Map`); numbers compare numerically across `I64`/`F64`; `F64`
    /// NaN sorts greater than every other float, making the order total.
    pub fn cmp_total(&self, other: &Value) -> core::cmp::Ordering {
        use core::cmp::Ordering;
        use Value::*;

        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                I64(_) | F64(_) => 2,
                Str(_) => 3,
                Bytes(_) => 4,
                List(_) => 5,
                Map(_) => 6,
            }
        }

        fn cmp_f64(a: f64, b: f64) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            }
        }

        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => cmp_f64(*a, *b),
            (I64(a), F64(b)) => cmp_f64(*a as f64, *b),
            (F64(a), I64(b)) => cmp_f64(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.cmp_total(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.cmp_total(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::I64(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::I64(n as i64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::I64(n as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F64(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::List(items)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn accessors_match_variants() {
        assert!(Value::Null.is_null());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::I64(-3).as_i64().unwrap(), -3);
        assert_eq!(Value::F64(1.5).as_f64().unwrap(), 1.5);
        assert_eq!(Value::I64(2).as_f64().unwrap(), 2.0);
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
        assert_eq!(Value::Bytes(vec![1, 2]).as_bytes().unwrap(), &[1, 2]);
        assert_eq!(
            Value::list([Value::I64(1)]).as_list().unwrap(),
            &[Value::I64(1)]
        );
    }

    #[test]
    fn accessors_report_type_mismatch() {
        let err = Value::I64(1).as_str().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("str"), "{msg}");
        assert!(msg.contains("i64"), "{msg}");
        assert!(Value::Null.as_bool().is_err());
        assert!(Value::str("x").as_map().is_err());
    }

    #[test]
    fn map_get_reports_missing_key() {
        let m = Value::map([("a", Value::I64(1))]);
        assert_eq!(m.get("a").unwrap(), &Value::I64(1));
        let err = m.get("b").unwrap_err().to_string();
        assert!(err.contains("`b`"), "{err}");
    }

    #[test]
    fn into_owned_extractors() {
        assert_eq!(Value::str("s").into_string().unwrap(), "s");
        assert_eq!(
            Value::list([Value::Bool(false)]).into_list().unwrap(),
            vec![Value::Bool(false)]
        );
        assert_eq!(Value::Bytes(vec![9]).into_bytes().unwrap(), vec![9]);
        assert!(Value::Null.into_string().is_err());
    }

    #[test]
    fn total_order_is_total_across_kinds() {
        let samples = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::I64(-1),
            Value::I64(5),
            Value::F64(2.5),
            Value::F64(f64::NAN),
            Value::str("a"),
            Value::str("b"),
            Value::Bytes(vec![0]),
            Value::list([Value::I64(1)]),
            Value::map([("k", Value::Null)]),
        ];
        for a in &samples {
            assert_eq!(a.cmp_total(a), Ordering::Equal, "{a} not equal to itself");
            for b in &samples {
                let ab = a.cmp_total(b);
                let ba = b.cmp_total(a);
                assert_eq!(ab, ba.reverse(), "{a} vs {b} antisymmetry");
            }
        }
    }

    #[test]
    fn numbers_compare_across_variants() {
        assert_eq!(Value::I64(2).cmp_total(&Value::F64(2.0)), Ordering::Equal);
        assert_eq!(Value::I64(2).cmp_total(&Value::F64(2.5)), Ordering::Less);
        assert_eq!(Value::F64(3.0).cmp_total(&Value::I64(2)), Ordering::Greater);
        // NaN sorts above all other numbers, keeping the order total.
        assert_eq!(
            Value::F64(f64::NAN).cmp_total(&Value::I64(i64::MAX)),
            Ordering::Greater
        );
    }

    #[test]
    fn lists_compare_lexicographically() {
        let a = Value::list([Value::I64(1), Value::I64(2)]);
        let b = Value::list([Value::I64(1), Value::I64(3)]);
        let c = Value::list([Value::I64(1)]);
        assert_eq!(a.cmp_total(&b), Ordering::Less);
        assert_eq!(c.cmp_total(&a), Ordering::Less);
    }

    #[test]
    fn display_is_compact() {
        let v = Value::map([
            ("n", Value::I64(1)),
            ("s", Value::str("x")),
            ("l", Value::list([Value::Bool(true)])),
        ]);
        assert_eq!(format!("{v}"), "{l: [true], n: 1, s: \"x\"}");
        assert_eq!(format!("{}", Value::Bytes(vec![1, 2, 3])), "<3 bytes>");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::I64(7));
        assert_eq!(Value::from(7u32), Value::I64(7));
        assert_eq!(Value::from(1.25f64), Value::F64(1.25));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
    }
}
