//! Identifier newtypes used across every SyD layer.
//!
//! The paper names entities loosely ("users", "SyD objects", "devices",
//! "groups", "services"); we give each a distinct, cheap, `Copy` identifier
//! so mixing them up is a type error rather than a runtime bug.

use core::fmt;

macro_rules! numeric_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw numeric identifier.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric identifier.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

numeric_id!(
    /// A SyD user. In the calendar application every user owns exactly one
    /// calendar database embedded in their device.
    UserId,
    "user-"
);

numeric_id!(
    /// A physical or simulated device hosting SyD device objects (an iPAQ in
    /// the paper's prototype). One device may host several services.
    DeviceId,
    "dev-"
);

numeric_id!(
    /// A dynamic group of SyD entities registered in the SyDDirectory
    /// (e.g. "the Biology faculty").
    GroupId,
    "group-"
);

numeric_id!(
    /// A coordination link entry in a device's link database.
    LinkId,
    "link-"
);

numeric_id!(
    /// A meeting in the calendar application.
    MeetingId,
    "meeting-"
);

numeric_id!(
    /// Correlates an RPC request with its response on the simulated network.
    RequestId,
    "req-"
);

/// Address of an endpoint on the simulated network.
///
/// This plays the role of an `(IP, port)` pair in the paper's TCP-socket
/// transport. The directory maps logical names ([`UserId`], [`ServiceName`])
/// to `NodeAddr`s, which is exactly the indirection that makes SyD
/// applications location transparent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeAddr(pub u64);

impl NodeAddr {
    /// Wraps a raw address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// Name of a published SyD service, e.g. `"calendar"` or `"mailbox"`.
///
/// A service name plus a method name addresses one remotely invocable
/// operation, mirroring the paper's `SyDListener` registrations. Names are
/// interned as owned strings; they are small and cloned rarely (once per
/// registration/lookup, never per message — messages carry them by value in
/// the wire envelope).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceName(String);

impl ServiceName {
    /// Creates a service name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// Returns the name as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for ServiceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc:{}", self.0)
    }
}

impl fmt::Display for ServiceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceName {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for ServiceName {
    fn from(s: String) -> Self {
        Self(s)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property really, but exercise the accessors.
        let u = UserId::new(7);
        let d = DeviceId::new(7);
        assert_eq!(u.raw(), d.raw());
        assert_eq!(format!("{u}"), "user-7");
        assert_eq!(format!("{d}"), "dev-7");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        for i in 0..100 {
            set.insert(LinkId::new(i % 10));
        }
        assert_eq!(set.len(), 10);
        assert!(LinkId::new(3) < LinkId::new(4));
    }

    #[test]
    fn service_name_round_trip() {
        let s = ServiceName::from("calendar");
        assert_eq!(s.as_str(), "calendar");
        assert_eq!(s, ServiceName::new(String::from("calendar")));
        assert_eq!(format!("{s}"), "calendar");
        assert_eq!(format!("{s:?}"), "svc:calendar");
    }

    #[test]
    fn node_addr_display() {
        assert_eq!(format!("{}", NodeAddr::new(42)), "node:42");
        assert_eq!(NodeAddr::from_raw_roundtrip(9).raw(), 9);
    }

    impl NodeAddr {
        fn from_raw_roundtrip(raw: u64) -> Self {
            NodeAddr::new(raw)
        }
    }

    #[test]
    fn default_ids_are_zero() {
        assert_eq!(UserId::default().raw(), 0);
        assert_eq!(RequestId::default().raw(), 0);
        assert_eq!(MeetingId::default().raw(), 0);
        assert_eq!(GroupId::default().raw(), 0);
    }
}
