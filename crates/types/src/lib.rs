//! Common vocabulary types for the SyD middleware.
//!
//! System on Devices (SyD) coordinates heterogeneous, independent per-device
//! data stores (Prasad et al., *Implementation of a Calendar Application
//! Based on SyD Coordination Links*, IPDPS 2003). Every layer of this
//! reproduction — the simulated network, the embedded store, the kernel and
//! the applications — shares the identifiers, dynamic values, clocks and
//! error types defined here.
//!
//! The crate is intentionally dependency-light: it must be usable from the
//! lowest substrate (the wire codec) upward.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod error;
pub mod id;
pub mod priority;
pub mod time;
pub mod value;

pub use bitmap::SlotBitmap;
pub use error::{SydError, SydResult};
pub use id::{DeviceId, GroupId, LinkId, MeetingId, NodeAddr, RequestId, ServiceName, UserId};
pub use priority::Priority;
pub use time::{Clock, Day, SimClock, SlotIndex, SlotRange, SystemClock, TimeSlot, Timestamp};
pub use value::Value;
