//! Priorities for users, meetings and coordination links.
//!
//! §4.1 gives every link a priority; §5/§6 assign priorities to users and
//! meetings ("a higher priority meeting may bump a previously scheduled
//! meeting", "each user is assigned a priority"). One ordered scale serves
//! all three.

use core::fmt;

/// A priority on a 0–255 scale; **higher values win**.
///
/// Waiting links are promoted highest-priority-first (§4.2 op. 3), and a
/// meeting may bump another only if its priority is strictly higher (§6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// Lowest possible priority.
    pub const MIN: Priority = Priority(0);
    /// Default priority for ordinary users and meetings.
    pub const NORMAL: Priority = Priority(100);
    /// Priority used for supervisors / must-attend meetings.
    pub const HIGH: Priority = Priority(200);
    /// Highest possible priority.
    pub const MAX: Priority = Priority(255);

    /// Builds a priority from its raw level.
    pub const fn new(level: u8) -> Self {
        Self(level)
    }

    /// Raw level.
    pub const fn level(self) -> u8 {
        self.0
    }

    /// True iff `self` may bump `other` (strictly higher, §6).
    pub fn outranks(self, other: Priority) -> bool {
        self.0 > other.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u8> for Priority {
    fn from(level: u8) -> Self {
        Priority(level)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::MIN < Priority::MAX);
        let mut v = vec![Priority::new(5), Priority::MAX, Priority::MIN];
        v.sort();
        assert_eq!(v, vec![Priority::MIN, Priority::new(5), Priority::MAX]);
    }

    #[test]
    fn outranks_is_strict() {
        assert!(Priority::HIGH.outranks(Priority::NORMAL));
        assert!(!Priority::NORMAL.outranks(Priority::NORMAL));
        assert!(!Priority::NORMAL.outranks(Priority::HIGH));
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(Priority::default(), Priority::NORMAL);
        assert_eq!(format!("{}", Priority::default()), "p100");
    }
}
