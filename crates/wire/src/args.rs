//! Shared, encode-once positional arguments for [`Request`]s.
//!
//! A group invocation sends the *same* argument list to every member of a
//! group (§4.1: "the SyDEngine dispatches the invocation to each of the
//! group's devices"). With a plain `Vec<Value>` that costs one deep clone
//! plus one full re-encoding per recipient at the network send boundary.
//! [`Args`] keeps the values behind an [`Arc`] so cloning is a reference
//! count bump, and lets the broadcaster pre-encode the canonical byte form
//! once ([`Args::preencode`]) so every subsequent [`Encode::encode`] is a
//! single `memcpy` of the shared buffer.
//!
//! The byte format is **identical** to the `Vec<Value>` encoding (varint
//! element count followed by the elements), so requests carrying [`Args`]
//! are byte-for-byte compatible with the pre-`Args` wire format — the
//! envelope tests enforce this.
//!
//! [`Request`]: crate::envelope::Request

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use bytes::BufMut;
use syd_types::{SydResult, Value};

use crate::codec::{put_varint, varint_len, Decode, Encode, Reader};

/// Interior of [`Args`]: the values plus the lazily cached canonical
/// encoding. Shared (never mutated) between all clones of an [`Args`].
struct ArgsInner {
    values: Vec<Value>,
    /// Canonical encoding of `values` (varint count + elements), filled
    /// at most once by [`Args::preencode`] and shared by every clone.
    encoded: OnceLock<Vec<u8>>,
}

/// An immutable, cheaply clonable argument list with an optional cached
/// canonical encoding.
///
/// Dereferences to `[Value]`, so read sites written against `Vec<Value>`
/// (`args.get(i)`, iteration, `&req.args` as `&[Value]`) keep compiling
/// unchanged. Construction sites use `From<Vec<Value>>`.
#[derive(Clone)]
pub struct Args {
    inner: Arc<ArgsInner>,
}

impl Args {
    /// Wraps an argument list. No encoding happens until the value is
    /// sent (or [`Args::preencode`] is called).
    pub fn new(values: Vec<Value>) -> Self {
        Args {
            inner: Arc::new(ArgsInner {
                values,
                encoded: OnceLock::new(),
            }),
        }
    }

    /// Encodes the canonical byte form once and caches it; subsequent
    /// [`Encode::encode`] calls on this value *and every clone of it*
    /// copy the cached buffer instead of re-encoding element by element.
    ///
    /// Returns the encoded length in bytes. Idempotent.
    pub fn preencode(&self) -> usize {
        self.inner
            .encoded
            .get_or_init(|| {
                let mut buf = Vec::with_capacity(self.values_encoded_len());
                self.encode_values(&mut buf);
                buf
            })
            .len()
    }

    /// Whether the canonical encoding has been cached (by this handle or
    /// any clone sharing it).
    pub fn is_preencoded(&self) -> bool {
        self.inner.encoded.get().is_some()
    }

    /// The arguments as a freshly allocated `Vec` (deep clone).
    pub fn to_vec(&self) -> Vec<Value> {
        self.inner.values.clone()
    }

    /// Encodes the element form: varint count followed by the elements —
    /// exactly the `Vec<Value>` wire format.
    fn encode_values(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.inner.values.len() as u64);
        for v in &self.inner.values {
            v.encode(buf);
        }
    }

    /// Length of the element form, computed without encoding.
    fn values_encoded_len(&self) -> usize {
        varint_len(self.inner.values.len() as u64)
            + self
                .inner
                .values
                .iter()
                .map(Encode::encoded_len)
                .sum::<usize>()
    }
}

impl Encode for Args {
    fn encode(&self, buf: &mut impl BufMut) {
        // The cached buffer *is* the canonical element encoding, so both
        // branches produce identical bytes.
        if let Some(bytes) = self.inner.encoded.get() {
            buf.put_slice(bytes);
        } else {
            self.encode_values(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        match self.inner.encoded.get() {
            Some(bytes) => bytes.len(),
            None => self.values_encoded_len(),
        }
    }
}

impl Decode for Args {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(Args::new(Vec::<Value>::decode(r)?))
    }
}

impl Deref for Args {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.inner.values
    }
}

impl From<Vec<Value>> for Args {
    fn from(values: Vec<Value>) -> Self {
        Args::new(values)
    }
}

impl From<&[Value]> for Args {
    fn from(values: &[Value]) -> Self {
        Args::new(values.to_vec())
    }
}

impl FromIterator<Value> for Args {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Args::new(iter.into_iter().collect())
    }
}

impl PartialEq for Args {
    fn eq(&self, other: &Self) -> bool {
        // Equality is over the values; the encoding cache is invisible.
        self.inner.values == other.inner.values
    }
}

impl fmt::Debug for Args {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.inner.values.iter()).finish()
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::new(Vec::new())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_vec};

    fn sample() -> Vec<Value> {
        vec![
            Value::I64(-42),
            Value::str("free_slots"),
            Value::Bytes(vec![1, 2, 3]),
            Value::Null,
        ]
    }

    #[test]
    fn bytes_identical_to_vec_encoding() {
        let values = sample();
        let args = Args::from(values.clone());
        assert_eq!(encode_to_vec(&args), encode_to_vec(&values));
        // Pre-encoding must not change a single byte.
        args.preencode();
        assert_eq!(encode_to_vec(&args), encode_to_vec(&values));
    }

    #[test]
    fn encoded_len_matches_with_and_without_cache() {
        let args = Args::from(sample());
        let plain = args.encoded_len();
        assert_eq!(args.preencode(), plain);
        assert_eq!(args.encoded_len(), plain);
        assert_eq!(encode_to_vec(&args).len(), plain);
    }

    #[test]
    fn clones_share_the_preencoded_buffer() {
        let args = Args::from(sample());
        let clone = args.clone();
        assert!(!clone.is_preencoded());
        args.preencode();
        // The cache lives in the shared inner, so the clone sees it too.
        assert!(clone.is_preencoded());
        assert_eq!(encode_to_vec(&clone), encode_to_vec(&args));
    }

    #[test]
    fn round_trip() {
        let args = Args::from(sample());
        let bytes = encode_to_vec(&args);
        let back: Args = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, args);
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn derefs_like_a_slice() {
        let args = Args::from(sample());
        assert_eq!(args.len(), 4);
        assert_eq!(args.get(1), Some(&Value::str("free_slots")));
        assert_eq!(args.to_vec(), sample());
        let empty = Args::default();
        assert!(empty.is_empty());
    }
}
