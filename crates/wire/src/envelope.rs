//! Message envelopes exchanged between SyD endpoints.
//!
//! Three payload kinds cover everything in the paper's runtime (Fig. 3):
//!
//! * [`Request`] — a remote method invocation dispatched by the SyDEngine
//!   and served by a SyDListener. Carries encrypted credentials (§5.4).
//! * [`Response`] — the correlated reply.
//! * [`EventMsg`] — a fire-and-forget global event published through the
//!   SyDEventHandler (link triggers, proxy heartbeats, mailbox pushes).
//!
//! An [`Envelope`] adds source/destination addressing for the simulated
//! network; a version byte leads every encoding so future formats can
//! coexist.

use bytes::BufMut;
use syd_types::{NodeAddr, RequestId, ServiceName, SydError, SydResult, UserId, Value};

use crate::args::Args;
use crate::codec::{put_varint, varint_len, Decode, Encode, Reader};

/// Wire format version tag.
pub const WIRE_VERSION: u8 = 1;

/// Marker byte introducing an optional trailing [`TraceContext`] on a
/// [`Request`].
const TRACE_MARKER: u8 = 1;

/// Distributed trace context carried on requests (see `syd-telemetry`).
///
/// The context is encoded as an *optional trailing extension* of
/// [`Request`]: a request without one encodes to exactly the bytes the
/// pre-trace format produced (keeping the format canonical), and a
/// decoder that finds no bytes after `args` yields `None`. That gives
/// two-way compatibility: old bytes decode under the new code, and
/// trace-free new bytes are byte-identical to old ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// End-to-end operation id, stable across every hop of a trace.
    pub trace_id: u64,
    /// Id of the span this request belongs to.
    pub span_id: u64,
    /// Number of RPC dispatches between the trace root and this request.
    pub hop: u32,
}

impl Encode for TraceContext {
    fn encode(&self, buf: &mut impl BufMut) {
        self.trace_id.encode(buf);
        self.span_id.encode(buf);
        self.hop.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.trace_id.encoded_len() + self.span_id.encoded_len() + self.hop.encoded_len()
    }
}

impl Decode for TraceContext {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(TraceContext {
            trace_id: u64::decode(r)?,
            span_id: u64::decode(r)?,
            hop: u32::decode(r)?,
        })
    }
}

/// A remote method invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Correlation id, unique per caller endpoint.
    pub id: RequestId,
    /// The invoking user (for auditing; authentication uses `credentials`).
    pub caller: UserId,
    /// The logical user the request is addressed to (the owner of the
    /// target service). Devices hosting a single user ignore it; a proxy
    /// hosting several disconnected users' replicas routes by it (§5.2).
    /// `UserId(0)` = unspecified.
    pub target: UserId,
    /// TEA-encrypted `user:password` envelope (§5.4); empty when the
    /// network runs with authentication disabled.
    pub credentials: Vec<u8>,
    /// Target service, e.g. `"calendar"`.
    pub service: ServiceName,
    /// Target method, e.g. `"reserve_slot"`.
    pub method: String,
    /// Positional arguments. [`Args`] encodes exactly like `Vec<Value>`
    /// but is cheap to clone and can carry a pre-encoded byte form shared
    /// across an entire group broadcast.
    pub args: Args,
    /// Optional distributed trace context, encoded as a trailing
    /// extension so trace-free requests keep the pre-trace byte format.
    pub trace: Option<TraceContext>,
}

impl Encode for Request {
    fn encode(&self, buf: &mut impl BufMut) {
        self.id.encode(buf);
        self.caller.encode(buf);
        self.target.encode(buf);
        self.credentials.encode(buf);
        self.service.encode(buf);
        self.method.encode(buf);
        self.args.encode(buf);
        // Trailing extension: nothing when absent (old-format bytes),
        // marker + context when present.
        if let Some(trace) = &self.trace {
            buf.put_u8(TRACE_MARKER);
            trace.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.caller.encoded_len()
            + self.target.encoded_len()
            + self.credentials.encoded_len()
            + self.service.encoded_len()
            + self.method.encoded_len()
            + self.args.encoded_len()
            + self.trace.as_ref().map_or(0, |t| 1 + t.encoded_len())
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let id = RequestId::decode(r)?;
        let caller = UserId::decode(r)?;
        let target = UserId::decode(r)?;
        let credentials = Vec::<u8>::decode(r)?;
        let service = ServiceName::decode(r)?;
        let method = String::decode(r)?;
        let args = Args::decode(r)?;
        // A request always ends its enclosing frame, so any bytes left
        // are the trailing trace extension; none means an old-format
        // (or deliberately untraced) request.
        let trace = if r.remaining() > 0 {
            match r.u8()? {
                TRACE_MARKER => Some(TraceContext::decode(r)?),
                other => {
                    return Err(SydError::Codec(format!(
                        "invalid request extension marker {other}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Request {
            id,
            caller,
            target,
            credentials,
            service,
            method,
            args,
            trace,
        })
    }
}

/// Reply to a [`Request`] with the same `id`.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Correlation id copied from the request.
    pub id: RequestId,
    /// Result of the invocation.
    pub result: Result<Value, SydError>,
}

impl Encode for Response {
    fn encode(&self, buf: &mut impl BufMut) {
        self.id.encode(buf);
        self.result.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len() + self.result.encoded_len()
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(Response {
            id: RequestId::decode(r)?,
            result: Result::<Value, SydError>::decode(r)?,
        })
    }
}

/// Fire-and-forget published event.
#[derive(Clone, Debug, PartialEq)]
pub struct EventMsg {
    /// Hierarchical topic, e.g. `"link.deleted"` or `"calendar.changed"`.
    pub topic: String,
    /// Publishing user.
    pub source: UserId,
    /// Event payload.
    pub payload: Value,
}

impl Encode for EventMsg {
    fn encode(&self, buf: &mut impl BufMut) {
        self.topic.encode(buf);
        self.source.encode(buf);
        self.payload.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.topic.encoded_len() + self.source.encoded_len() + self.payload.encoded_len()
    }
}

impl Decode for EventMsg {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(EventMsg {
            topic: String::decode(r)?,
            source: UserId::decode(r)?,
            payload: Value::decode(r)?,
        })
    }
}

/// The three kinds of traffic on a SyD network.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Remote invocation.
    Request(Request),
    /// Correlated reply.
    Response(Response),
    /// Published event.
    Event(EventMsg),
}

const TAG_REQUEST: u8 = 0;
const TAG_RESPONSE: u8 = 1;
const TAG_EVENT: u8 = 2;

impl Encode for Payload {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Payload::Request(m) => {
                buf.put_u8(TAG_REQUEST);
                m.encode(buf);
            }
            Payload::Response(m) => {
                buf.put_u8(TAG_RESPONSE);
                m.encode(buf);
            }
            Payload::Event(m) => {
                buf.put_u8(TAG_EVENT);
                m.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Payload::Request(m) => m.encoded_len(),
            Payload::Response(m) => m.encoded_len(),
            Payload::Event(m) => m.encoded_len(),
        }
    }
}

impl Decode for Payload {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        match r.u8()? {
            TAG_REQUEST => Ok(Payload::Request(Request::decode(r)?)),
            TAG_RESPONSE => Ok(Payload::Response(Response::decode(r)?)),
            TAG_EVENT => Ok(Payload::Event(EventMsg::decode(r)?)),
            other => Err(SydError::Codec(format!("invalid payload tag {other}"))),
        }
    }
}

/// An addressed message on the simulated network.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Sending endpoint.
    pub src: NodeAddr,
    /// Receiving endpoint.
    pub dst: NodeAddr,
    /// Message body.
    pub payload: Payload,
}

impl Envelope {
    /// Convenience constructor.
    pub fn new(src: NodeAddr, dst: NodeAddr, payload: Payload) -> Self {
        Self { src, dst, payload }
    }

    /// Wire footprint in bytes (version byte included); reported by the
    /// baseline-vs-SyD benchmark (experiment E1).
    pub fn wire_len(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(WIRE_VERSION);
        self.src.encode(buf);
        self.dst.encode(buf);
        // Length-prefixed payload lets routers forward without decoding it.
        put_varint(buf, self.payload.encoded_len() as u64);
        self.payload.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        let body = self.payload.encoded_len();
        1 + self.src.encoded_len() + self.dst.encoded_len() + varint_len(body as u64) + body
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(SydError::Codec(format!(
                "unsupported wire version {version} (expected {WIRE_VERSION})"
            )));
        }
        let src = NodeAddr::decode(r)?;
        let dst = NodeAddr::decode(r)?;
        let body_len = r.len_prefix()?;
        let before = r.remaining();
        let payload = Payload::decode(r)?;
        let consumed = before - r.remaining();
        if consumed != body_len {
            return Err(SydError::Codec(format!(
                "payload length prefix {body_len} != actual {consumed}"
            )));
        }
        Ok(Envelope { src, dst, payload })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_vec};

    fn sample_request() -> Request {
        Request {
            id: RequestId::new(17),
            caller: UserId::new(3),
            target: UserId::new(4),
            credentials: vec![0xde, 0xad],
            service: ServiceName::new("calendar"),
            method: "find_free_slots".into(),
            args: vec![Value::I64(1), Value::str("d1..d2")].into(),
            trace: None,
        }
    }

    /// Encodes a request exactly as the pre-`TraceContext` format did:
    /// the seven original fields and nothing after `args`.
    fn encode_legacy(req: &Request) -> Vec<u8> {
        let mut buf = Vec::new();
        req.id.encode(&mut buf);
        req.caller.encode(&mut buf);
        req.target.encode(&mut buf);
        req.credentials.encode(&mut buf);
        req.service.encode(&mut buf);
        req.method.encode(&mut buf);
        // The legacy format carried a plain `Vec<Value>`; encoding the
        // values through that path proves `Args` is byte-compatible.
        req.args.to_vec().encode(&mut buf);
        buf
    }

    #[test]
    fn request_round_trip() {
        let env = Envelope::new(
            NodeAddr::new(1),
            NodeAddr::new(2),
            Payload::Request(sample_request()),
        );
        let bytes = encode_to_vec(&env);
        assert_eq!(bytes.len(), env.wire_len());
        let back: Envelope = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn response_round_trip_ok_and_err() {
        for result in [
            Ok(Value::list([Value::I64(9)])),
            Err(SydError::ConstraintFailed("xor".into())),
        ] {
            let env = Envelope::new(
                NodeAddr::new(2),
                NodeAddr::new(1),
                Payload::Response(Response {
                    id: RequestId::new(17),
                    result,
                }),
            );
            let bytes = encode_to_vec(&env);
            let back: Envelope = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn event_round_trip() {
        let env = Envelope::new(
            NodeAddr::new(5),
            NodeAddr::new(6),
            Payload::Event(EventMsg {
                topic: "link.deleted".into(),
                source: UserId::new(8),
                payload: Value::map([("link", Value::I64(12))]),
            }),
        );
        let bytes = encode_to_vec(&env);
        assert_eq!(decode_from_slice::<Envelope>(&bytes).unwrap(), env);
    }

    #[test]
    fn wrong_version_rejected() {
        let env = Envelope::new(
            NodeAddr::new(1),
            NodeAddr::new(2),
            Payload::Event(EventMsg {
                topic: "t".into(),
                source: UserId::new(0),
                payload: Value::Null,
            }),
        );
        let mut bytes = encode_to_vec(&env);
        bytes[0] = 99;
        let err = decode_from_slice::<Envelope>(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        let env = Envelope::new(
            NodeAddr::new(1),
            NodeAddr::new(2),
            Payload::Request(sample_request()),
        );
        let mut bytes = encode_to_vec(&env);
        // The length prefix sits right after version + two 1-byte addrs.
        bytes[3] = bytes[3].wrapping_add(1);
        assert!(decode_from_slice::<Envelope>(&bytes).is_err());
    }

    #[test]
    fn traced_request_round_trips() {
        let mut req = sample_request();
        req.trace = Some(TraceContext {
            trace_id: 0xdead_beef_0042,
            span_id: 7,
            hop: 3,
        });
        let env = Envelope::new(NodeAddr::new(1), NodeAddr::new(2), Payload::Request(req));
        let bytes = encode_to_vec(&env);
        assert_eq!(bytes.len(), env.wire_len());
        let back: Envelope = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn legacy_request_bytes_still_decode() {
        // Bytes produced by the pre-trace encoder must decode, with the
        // trace absent.
        let req = sample_request();
        let legacy = encode_legacy(&req);
        let back: Request = decode_from_slice(&legacy).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.trace, None);
    }

    #[test]
    fn untraced_request_encodes_to_legacy_bytes() {
        // The other direction of compatibility: a request without a
        // trace must be byte-identical to the old format, so old
        // decoders (and stored captures) see nothing new.
        let req = sample_request();
        assert_eq!(encode_to_vec(&req), encode_legacy(&req));
    }

    #[test]
    fn unknown_extension_marker_rejected() {
        let mut bytes = encode_to_vec(&sample_request());
        bytes.push(9); // not TRACE_MARKER
        let err = decode_from_slice::<Request>(&bytes).unwrap_err();
        assert!(err.to_string().contains("extension marker"), "{err}");
    }

    #[test]
    fn truncated_trace_extension_rejected() {
        let mut req = sample_request();
        req.trace = Some(TraceContext {
            trace_id: u64::MAX,
            span_id: u64::MAX,
            hop: u32::MAX,
        });
        let bytes = encode_to_vec(&req);
        let legacy_len = encode_legacy(&req).len();
        for cut in legacy_len + 1..bytes.len() {
            assert!(
                decode_from_slice::<Request>(&bytes[..cut]).is_err(),
                "truncation at {cut} should fail"
            );
        }
    }

    #[test]
    fn empty_credentials_mean_unauthenticated() {
        let mut req = sample_request();
        req.credentials.clear();
        let bytes = encode_to_vec(&req);
        let back: Request = decode_from_slice(&bytes).unwrap();
        assert!(back.credentials.is_empty());
    }

    #[test]
    fn wire_len_tracks_payload_size() {
        let small = Envelope::new(
            NodeAddr::new(1),
            NodeAddr::new(2),
            Payload::Event(EventMsg {
                topic: "t".into(),
                source: UserId::new(0),
                payload: Value::Null,
            }),
        );
        let big = Envelope::new(
            NodeAddr::new(1),
            NodeAddr::new(2),
            Payload::Event(EventMsg {
                topic: "t".into(),
                source: UserId::new(0),
                payload: Value::Bytes(vec![0; 1000]),
            }),
        );
        assert!(big.wire_len() > small.wire_len() + 900);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod proptests {
    use super::*;
    use crate::codec::{decode_from_slice, encode_to_vec};
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            ".{0,16}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
        ]
    }

    fn arb_trace() -> impl Strategy<Value = Option<TraceContext>> {
        proptest::option::of((any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(trace_id, span_id, hop)| TraceContext {
                trace_id,
                span_id,
                hop,
            },
        ))
    }

    fn arb_payload() -> impl Strategy<Value = Payload> {
        prop_oneof![
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                proptest::collection::vec(any::<u8>(), 0..32),
                "[a-z.]{1,12}",
                "[a-z_]{1,12}",
                proptest::collection::vec(arb_value(), 0..4),
                arb_trace(),
            )
                .prop_map(
                    |(id, caller, target, credentials, service, method, args, trace)| {
                        Payload::Request(Request {
                            id: RequestId::new(id),
                            caller: UserId::new(caller),
                            target: UserId::new(target),
                            credentials,
                            service: ServiceName::new(service),
                            method,
                            args: args.into(),
                            trace,
                        })
                    }
                ),
            (any::<u64>(), arb_value()).prop_map(|(id, v)| {
                Payload::Response(Response {
                    id: RequestId::new(id),
                    result: Ok(v),
                })
            }),
            (any::<u64>(), "[a-z.]{1,16}", any::<u64>(), arb_value()).prop_map(
                |(_, topic, source, payload)| {
                    Payload::Event(EventMsg {
                        topic,
                        source: UserId::new(source),
                        payload,
                    })
                }
            ),
        ]
    }

    proptest! {
        #[test]
        fn envelope_round_trip(src in any::<u64>(), dst in any::<u64>(), payload in arb_payload()) {
            let env = Envelope::new(NodeAddr::new(src), NodeAddr::new(dst), payload);
            let bytes = encode_to_vec(&env);
            prop_assert_eq!(bytes.len(), env.wire_len());
            let back: Envelope = decode_from_slice(&bytes).unwrap();
            prop_assert_eq!(back, env);
        }

        #[test]
        fn trace_extension_round_trip(trace in arb_trace(), id in any::<u64>()) {
            let req = Request {
                id: RequestId::new(id),
                caller: UserId::new(1),
                target: UserId::new(2),
                credentials: vec![],
                service: ServiceName::new("s"),
                method: "m".into(),
                args: vec![].into(),
                trace,
            };
            let bytes = encode_to_vec(&req);
            prop_assert_eq!(bytes.len(), req.encoded_len());
            let back: Request = decode_from_slice(&bytes).unwrap();
            prop_assert_eq!(back, req);
        }

        #[test]
        fn envelope_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode_from_slice::<Envelope>(&bytes);
        }

        #[test]
        fn single_bit_flips_never_panic(payload in arb_payload(), flip in 0usize..64) {
            let env = Envelope::new(NodeAddr::new(1), NodeAddr::new(2), payload);
            let mut bytes = encode_to_vec(&env);
            let idx = flip % bytes.len();
            bytes[idx] ^= 1 << (flip % 8);
            // Either decodes to something or errors; never panics, and a
            // successful decode re-encodes without panicking.
            if let Ok(back) = decode_from_slice::<Envelope>(&bytes) {
                let _ = encode_to_vec(&back);
            }
        }
    }
}
