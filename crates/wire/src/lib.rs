//! Compact binary wire format for SyD messages.
//!
//! The paper's prototype used raw TCP sockets "for small foot-print and
//! maximum flexibility" (§3.1) rather than a heavyweight serialization
//! stack. This crate is the equivalent substrate: a hand-rolled,
//! length-prefixed, varint-based codec over [`bytes`] buffers, with no
//! reflection and no allocation beyond the decoded values themselves.
//!
//! Two layers:
//!
//! * [`codec`] — [`Encode`]/[`Decode`] traits and implementations for
//!   primitives, collections and every `syd-types` type.
//! * [`envelope`] — the message envelopes that actually travel between
//!   device endpoints: requests, responses and events.
//!
//! Every encoding starts from the message itself; framing (length prefix on
//! a stream) is the transport's concern. The format is canonical: encoding
//! a decoded message yields identical bytes, which the tests enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod codec;
pub mod envelope;

pub use args::Args;
pub use codec::{decode_from_slice, encode_to_vec, Decode, Encode, Reader};
pub use envelope::{Envelope, EventMsg, Payload, Request, Response, TraceContext};
