//! `Encode`/`Decode` traits and implementations.
//!
//! Layout conventions:
//!
//! * Unsigned integers are LEB128 varints (`u64`); signed integers are
//!   zigzag-encoded varints.
//! * Strings and byte blobs are a varint length followed by raw bytes.
//! * Sums ([`syd_types::Value`], payloads, errors) are a one-byte tag
//!   followed by the variant body.
//! * Collections are a varint count followed by the elements.
//!
//! Decoding is strict: trailing bytes, truncated input, bad tags and invalid
//! UTF-8 are all [`SydError::Codec`] errors, never panics. Resource bounds
//! (`MAX_LEN`) cap a single collection/string so a corrupt length prefix
//! cannot trigger an enormous allocation.

use bytes::{Buf, BufMut};
use syd_types::{
    Day, DeviceId, GroupId, LinkId, MeetingId, NodeAddr, Priority, RequestId, ServiceName,
    SlotBitmap, SlotIndex, SlotRange, SydError, SydResult, TimeSlot, Timestamp, UserId, Value,
};

/// Upper bound on a decoded collection length or string size (16 MiB).
///
/// A single corrupt varint must not make the decoder reserve gigabytes.
pub const MAX_LEN: u64 = 16 * 1024 * 1024;

/// Types that can serialize themselves into a [`BufMut`].
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Exact number of bytes [`Encode::encode`] will write.
    ///
    /// Used by the benchmarks to report wire footprints and by the
    /// transport to pre-size buffers.
    fn encoded_len(&self) -> usize;
}

/// Types that can deserialize themselves from a [`Reader`].
pub trait Decode: Sized {
    /// Consumes bytes from `r`, producing a value or a codec error.
    fn decode(r: &mut Reader<'_>) -> SydResult<Self>;
}

/// A checked cursor over an input slice.
///
/// Unlike raw [`Buf`], every read is bounds-checked and produces
/// [`SydError::Codec`] instead of panicking on truncated input.
pub struct Reader<'a> {
    input: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps an input slice.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> SydResult<u8> {
        if self.input.is_empty() {
            return Err(SydError::Codec("unexpected end of input".into()));
        }
        let b = self.input[0];
        self.input.advance(1);
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> SydResult<&'a [u8]> {
        if self.input.len() < n {
            return Err(SydError::Codec(format!(
                "need {n} bytes, only {} remain",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> SydResult<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(SydError::Codec("varint overflows u64".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(SydError::Codec("varint too long".into()));
            }
        }
    }

    /// Reads a varint validated against [`MAX_LEN`], for use as a length.
    pub fn len_prefix(&mut self) -> SydResult<usize> {
        let n = self.varint()?;
        if n > MAX_LEN {
            return Err(SydError::Codec(format!(
                "length {n} exceeds limit {MAX_LEN}"
            )));
        }
        Ok(n as usize)
    }
}

/// Number of bytes the varint encoding of `v` occupies.
pub fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Writes a LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes any `Encode` value into a fresh vector.
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    debug_assert_eq!(buf.len(), value.encoded_len(), "encoded_len out of sync");
    buf
}

/// Decodes a value that must occupy the *entire* input slice.
pub fn decode_from_slice<T: Decode>(input: &[u8]) -> SydResult<T> {
    let mut r = Reader::new(input);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(SydError::Codec(format!(
            "{} trailing bytes after message",
            r.remaining()
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

impl Encode for u8 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(*self);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        r.u8()
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SydError::Codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Encode for u16 {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, u64::from(*self));
    }
    fn encoded_len(&self) -> usize {
        varint_len(u64::from(*self))
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let v = r.varint()?;
        u16::try_from(v).map_err(|_| SydError::Codec(format!("{v} overflows u16")))
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, u64::from(*self));
    }
    fn encoded_len(&self) -> usize {
        varint_len(u64::from(*self))
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let v = r.varint()?;
        u32::try_from(v).map_err(|_| SydError::Codec(format!("{v} overflows u32")))
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, *self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        r.varint()
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, zigzag(*self));
    }
    fn encoded_len(&self) -> usize {
        varint_len(zigzag(*self))
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(unzigzag(r.varint()?))
    }
}

impl Encode for f64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.to_bits());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let raw = r.bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut impl BufMut) {
        self.as_str().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let n = r.len_prefix()?;
        let raw = r.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|e| SydError::Codec(format!("invalid utf-8: {e}")))
    }
}

impl Encode for [u8] {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut impl BufMut) {
        self.as_slice().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.as_slice().encoded_len()
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let n = r.len_prefix()?;
        Ok(r.bytes(n)?.to_vec())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(SydError::Codec(format!("invalid option tag {other}"))),
        }
    }
}

/// Generic list encoding; `Vec<u8>` has its own compact blob form above, so
/// this impl is restricted to non-byte element types via the blanket bound.
macro_rules! vec_codec {
    ($elem:ty) => {
        impl Encode for Vec<$elem> {
            fn encode(&self, buf: &mut impl BufMut) {
                put_varint(buf, self.len() as u64);
                for item in self {
                    item.encode(buf);
                }
            }
            fn encoded_len(&self) -> usize {
                varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
            }
        }

        impl Decode for Vec<$elem> {
            fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
                let n = r.len_prefix()?;
                let mut out = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    out.push(<$elem>::decode(r)?);
                }
                Ok(out)
            }
        }
    };
}

vec_codec!(Value);
vec_codec!(String);
vec_codec!(UserId);
vec_codec!(u64);

// ---------------------------------------------------------------------------
// syd-types ids & time
// ---------------------------------------------------------------------------

macro_rules! id_codec {
    ($name:ident) => {
        impl Encode for $name {
            fn encode(&self, buf: &mut impl BufMut) {
                put_varint(buf, self.raw());
            }
            fn encoded_len(&self) -> usize {
                varint_len(self.raw())
            }
        }

        impl Decode for $name {
            fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
                Ok($name::new(r.varint()?))
            }
        }
    };
}

id_codec!(UserId);
id_codec!(DeviceId);
id_codec!(GroupId);
id_codec!(LinkId);
id_codec!(MeetingId);
id_codec!(RequestId);
id_codec!(NodeAddr);

impl Encode for ServiceName {
    fn encode(&self, buf: &mut impl BufMut) {
        self.as_str().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl Decode for ServiceName {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(ServiceName::new(String::decode(r)?))
    }
}

impl Encode for Timestamp {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.as_micros());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.as_micros())
    }
}

impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(Timestamp::from_micros(r.varint()?))
    }
}

impl Encode for TimeSlot {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.ordinal());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.ordinal())
    }
}

impl Decode for TimeSlot {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(TimeSlot::from_ordinal(r.varint()?))
    }
}

impl Encode for SlotRange {
    fn encode(&self, buf: &mut impl BufMut) {
        self.start.encode(buf);
        self.end.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.start.encoded_len() + self.end.encoded_len()
    }
}

impl Decode for SlotRange {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let start = TimeSlot::decode(r)?;
        let end = TimeSlot::decode(r)?;
        if start.ordinal() > end.ordinal() {
            return Err(SydError::Codec(format!(
                "reversed slot range {start}..{end}"
            )));
        }
        Ok(SlotRange::new(start, end))
    }
}

impl Encode for SlotBitmap {
    /// Varint window header (`start`, `len`) followed by one fixed
    /// 8-byte little-endian word per 64 slots — the word count is fully
    /// determined by `len`, so no second length prefix travels.
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, self.start_ordinal());
        put_varint(buf, u64::from(self.len()));
        for w in self.words() {
            buf.put_u64_le(*w);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.start_ordinal())
            + varint_len(u64::from(self.len()))
            + self.words().len() * 8
    }
}

impl Decode for SlotBitmap {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let start = r.varint()?;
        let len = r.varint()?;
        if len > MAX_LEN {
            return Err(SydError::Codec(format!("slot bitmap of {len} slots")));
        }
        let len = len as u32;
        let mut words = Vec::with_capacity((len as usize).div_ceil(64));
        for _ in 0..(len as usize).div_ceil(64) {
            let chunk = r.bytes(8)?;
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            words.push(u64::from_le_bytes(b));
        }
        SlotBitmap::from_raw_parts(start, len, words).map_err(|e| SydError::Codec(e.to_string()))
    }
}

impl Encode for Day {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, u64::from(self.0));
    }
    fn encoded_len(&self) -> usize {
        varint_len(u64::from(self.0))
    }
}

impl Decode for Day {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(Day::new(u32::decode(r)?))
    }
}

impl Encode for SlotIndex {
    fn encode(&self, buf: &mut impl BufMut) {
        put_varint(buf, u64::from(self.0));
    }
    fn encoded_len(&self) -> usize {
        varint_len(u64::from(self.0))
    }
}

impl Decode for SlotIndex {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(SlotIndex::new(u16::decode(r)?))
    }
}

impl Encode for Priority {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.level());
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for Priority {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        Ok(Priority::new(r.u8()?))
    }
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_I64: u8 = 2;
const VAL_F64: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_BYTES: u8 = 5;
const VAL_LIST: u8 = 6;
const VAL_MAP: u8 = 7;

impl Encode for Value {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Value::Null => buf.put_u8(VAL_NULL),
            Value::Bool(b) => {
                buf.put_u8(VAL_BOOL);
                b.encode(buf);
            }
            Value::I64(n) => {
                buf.put_u8(VAL_I64);
                n.encode(buf);
            }
            Value::F64(x) => {
                buf.put_u8(VAL_F64);
                x.encode(buf);
            }
            Value::Str(s) => {
                buf.put_u8(VAL_STR);
                s.encode(buf);
            }
            Value::Bytes(b) => {
                buf.put_u8(VAL_BYTES);
                b.encode(buf);
            }
            Value::List(items) => {
                buf.put_u8(VAL_LIST);
                put_varint(buf, items.len() as u64);
                for item in items {
                    item.encode(buf);
                }
            }
            Value::Map(map) => {
                buf.put_u8(VAL_MAP);
                put_varint(buf, map.len() as u64);
                for (k, v) in map {
                    k.encode(buf);
                    v.encode(buf);
                }
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Bool(b) => b.encoded_len(),
            Value::I64(n) => n.encoded_len(),
            Value::F64(x) => x.encoded_len(),
            Value::Str(s) => s.encoded_len(),
            Value::Bytes(b) => b.encoded_len(),
            Value::List(items) => {
                varint_len(items.len() as u64)
                    + items.iter().map(Encode::encoded_len).sum::<usize>()
            }
            Value::Map(map) => {
                varint_len(map.len() as u64)
                    + map
                        .iter()
                        .map(|(k, v)| k.encoded_len() + v.encoded_len())
                        .sum::<usize>()
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        match r.u8()? {
            VAL_NULL => Ok(Value::Null),
            VAL_BOOL => Ok(Value::Bool(bool::decode(r)?)),
            VAL_I64 => Ok(Value::I64(i64::decode(r)?)),
            VAL_F64 => Ok(Value::F64(f64::decode(r)?)),
            VAL_STR => Ok(Value::Str(String::decode(r)?)),
            VAL_BYTES => Ok(Value::Bytes(Vec::<u8>::decode(r)?)),
            VAL_LIST => {
                let n = r.len_prefix()?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Value::decode(r)?);
                }
                Ok(Value::List(items))
            }
            VAL_MAP => {
                let n = r.len_prefix()?;
                let mut map = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let k = String::decode(r)?;
                    let v = Value::decode(r)?;
                    map.insert(k, v);
                }
                Ok(Value::Map(map))
            }
            other => Err(SydError::Codec(format!("invalid value tag {other}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// SydError and Result<Value, SydError>
// ---------------------------------------------------------------------------

impl Encode for SydError {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.kind_code());
        self.wire_message().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        1 + self.wire_message().encoded_len()
    }
}

impl Decode for SydError {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let code = r.u8()?;
        let message = String::decode(r)?;
        Ok(SydError::from_wire(code, message))
    }
}

impl Encode for Result<Value, SydError> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Ok(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            Err(e) => {
                buf.put_u8(0);
                e.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Ok(v) => v.encoded_len(),
            Err(e) => e.encoded_len(),
        }
    }
}

impl Decode for Result<Value, SydError> {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        match r.u8()? {
            1 => Ok(Ok(Value::decode(r)?)),
            0 => Ok(Err(SydError::decode(r)?)),
            other => Err(SydError::Codec(format!("invalid result tag {other}"))),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        assert_eq!(bytes.len(), value.encoded_len());
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value);
        // Canonical: re-encoding the decoded value gives identical bytes.
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(127u64);
        round_trip(128u64);
        round_trip(u64::MAX);
        round_trip(-1i64);
        round_trip(i64::MIN);
        round_trip(i64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(3.25f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(String::from("héllo"));
        round_trip(String::new());
        round_trip(vec![0u8, 255, 7]);
        round_trip(Option::<u64>::None);
        round_trip(Some(9u64));
    }

    #[test]
    fn ids_and_time_round_trip() {
        round_trip(UserId::new(42));
        round_trip(NodeAddr::new(u64::MAX));
        round_trip(ServiceName::new("calendar"));
        round_trip(Timestamp::from_micros(123_456));
        round_trip(TimeSlot::new(10, 23));
        round_trip(SlotRange::days(1, 5));
        round_trip(Priority::HIGH);
        round_trip(Day::new(7));
        round_trip(SlotIndex::new(3));
        round_trip(vec![UserId::new(1), UserId::new(2)]);
    }

    #[test]
    fn slot_bitmaps_round_trip() {
        round_trip(SlotBitmap::empty(SlotRange::days(0, 0)));
        round_trip(SlotBitmap::all_free(SlotRange::days(2, 9)));
        let mut partial = SlotBitmap::empty(SlotRange::days(1, 4));
        partial.set_free(TimeSlot::new(1, 0));
        partial.set_free(TimeSlot::new(3, 23));
        round_trip(partial);
    }

    #[test]
    fn slot_bitmap_decode_rejects_phantom_bits() {
        let bm = SlotBitmap::all_free(SlotRange::days(0, 1));
        let mut bytes = encode_to_vec(&bm);
        // Set a bit past the 24-slot window inside the single word.
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        assert!(decode_from_slice::<SlotBitmap>(&bytes).is_err());
    }

    #[test]
    fn values_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::I64(-77));
        round_trip(Value::F64(6.5));
        round_trip(Value::str("x"));
        round_trip(Value::Bytes(vec![1, 2, 3]));
        round_trip(Value::list([
            Value::I64(1),
            Value::list([Value::Null, Value::str("nested")]),
        ]));
        round_trip(Value::map([
            ("a", Value::I64(1)),
            ("b", Value::map([("c", Value::Bool(false))])),
        ]));
    }

    #[test]
    fn errors_round_trip() {
        round_trip(SydError::Timeout(RequestId::new(5)));
        round_trip(SydError::NoSuchService(
            ServiceName::new("cal"),
            "reserve".into(),
        ));
        round_trip(Result::<Value, SydError>::Ok(Value::I64(1)));
        round_trip(Result::<Value, SydError>::Err(SydError::Shutdown));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = encode_to_vec(&Value::str("hello world"));
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<Value>(&bytes[..cut]);
            assert!(err.is_err(), "decoding {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = encode_to_vec(&Value::I64(1));
        bytes.push(0);
        let err = decode_from_slice::<Value>(&bytes).unwrap_err();
        assert!(matches!(err, SydError::Codec(_)));
    }

    #[test]
    fn bad_tags_are_errors() {
        assert!(decode_from_slice::<Value>(&[99]).is_err());
        assert!(decode_from_slice::<bool>(&[7]).is_err());
        assert!(decode_from_slice::<Option<u64>>(&[9]).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        // String claiming u64::MAX/2 bytes.
        let mut bytes = vec![VAL_STR];
        put_varint(&mut bytes, u64::MAX / 2);
        let err = decode_from_slice::<Value>(&bytes).unwrap_err();
        assert!(err.to_string().contains("exceeds limit"), "{err}");
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0xffu8; 11];
        let mut r = Reader::new(&bytes);
        assert!(r.varint().is_err());
    }

    #[test]
    fn varint_boundary_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(16_383), 2);
        assert_eq!(varint_len(16_384), 3);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn reversed_slot_range_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100); // start ordinal
        put_varint(&mut buf, 50); // end ordinal < start
        assert!(decode_from_slice::<SlotRange>(&buf).is_err());
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let bytes = encode_to_vec(&f64::NAN);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert!(back.is_nan());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            any::<f64>().prop_map(Value::F64),
            ".{0,32}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        ];
        leaf.prop_recursive(3, 24, 6, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
                proptest::collection::btree_map(".{0,8}", inner, 0..6).prop_map(Value::Map),
            ]
        })
    }

    /// Structural equality that treats NaN as equal to NaN, so the codec
    /// round-trip property holds for every float.
    fn value_eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::F64(x), Value::F64(y)) => (x.is_nan() && y.is_nan()) || x == y,
            (Value::List(xs), Value::List(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| value_eq(x, y))
            }
            (Value::Map(xs), Value::Map(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|((ka, va), (kb, vb))| ka == kb && value_eq(va, vb))
            }
            _ => a == b,
        }
    }

    proptest! {
        #[test]
        fn value_round_trip(v in arb_value()) {
            let bytes = encode_to_vec(&v);
            prop_assert_eq!(bytes.len(), v.encoded_len());
            let back: Value = decode_from_slice(&bytes).unwrap();
            prop_assert!(value_eq(&back, &v), "decoded {:?} != original {:?}", back, v);
        }

        #[test]
        fn u64_round_trip(n in any::<u64>()) {
            let bytes = encode_to_vec(&n);
            prop_assert_eq!(decode_from_slice::<u64>(&bytes).unwrap(), n);
        }

        #[test]
        fn i64_round_trip(n in any::<i64>()) {
            let bytes = encode_to_vec(&n);
            prop_assert_eq!(decode_from_slice::<i64>(&bytes).unwrap(), n);
        }

        #[test]
        fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Whatever the input, decoding returns Ok or Err — no panic, no
            // unbounded allocation.
            let _ = decode_from_slice::<Value>(&bytes);
        }
    }
}
