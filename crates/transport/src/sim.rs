//! The simulated shared-medium network and its router thread.
//!
//! All endpoints of one [`Network`] share a single router — deliberately so:
//! the paper's devices shared one 802.11b channel. The router keeps a
//! min-heap of in-flight messages ordered by due time and delivers each to
//! its destination endpoint's channel, applying the loss, partition and
//! connection rules along the way.
//!
//! Messages are fully encoded with the `syd-wire` codec at send time and
//! decoded by the receiving endpoint, so every hop exercises the real wire
//! format and the stats counters see real byte counts.
//!
//! [`Network`] implements [`Transport`] (and [`Endpoint`] implements
//! [`TransportEndpoint`]), making the simulator one backend among others;
//! [`SimTransport`] is the backend-style name for the same type.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use syd_telemetry::Registry;
use syd_types::{NodeAddr, SydError, SydResult};
use syd_wire::{decode_from_slice, encode_to_vec, Envelope, Payload, Response};

use crate::config::NetConfig;
use crate::stats::{NetStats, StatsSnapshot};
use crate::{
    QueueSpan, ReadyNotifier, Transport, TransportEndpoint, TransportEvent, TransportMetrics,
};

/// Backend-style alias: the simulated network *is* the sim transport.
pub type SimTransport = Network;

/// What travels down an endpoint's channel: either a fully encoded frame
/// or a synthetic lifecycle event.
enum SimMsg {
    Frame(Vec<u8>),
    Control(TransportEvent),
}

/// An in-flight message.
struct Scheduled {
    due: Instant,
    seq: u64,
    src: NodeAddr,
    dst: NodeAddr,
    bytes: Vec<u8>,
    /// Queueing-span bookkeeping when the message is a traced request.
    queue_span: Option<QueueSpan>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Due-time order, sequence number as FIFO tie-break.
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

struct EndpointSlot {
    tx: Sender<SimMsg>,
    connected: bool,
    /// Test instrumentation: mirror of every delivered frame body.
    tap: Option<Sender<Vec<u8>>>,
    /// Reactor readiness hook: pinged after every enqueue on `tx`.
    notifier: Option<Arc<dyn ReadyNotifier>>,
}

impl EndpointSlot {
    /// Enqueues a message and pings the readiness notifier, if any.
    /// Returns whether the endpoint still held its receiver.
    fn push(&self, addr: NodeAddr, msg: SimMsg) -> bool {
        let ok = self.tx.send(msg).is_ok();
        if let Some(notifier) = &self.notifier {
            notifier.notify(addr);
        }
        ok
    }
}

struct RouterState {
    heap: BinaryHeap<Reverse<Scheduled>>,
    endpoints: HashMap<NodeAddr, EndpointSlot>,
    /// Normalized (low, high) pairs that cannot exchange messages.
    partitions: HashSet<(NodeAddr, NodeAddr)>,
    rng: StdRng,
    cfg: NetConfig,
    shutdown: bool,
}

struct Inner {
    state: Mutex<RouterState>,
    cv: Condvar,
    stats: NetStats,
    registry: Arc<Registry>,
    tmetrics: TransportMetrics,
    /// Records `transport.queue` spans for traced requests.
    tracer: syd_trace::Tracer,
    next_addr: AtomicU64,
    next_seq: AtomicU64,
}

/// Handle to a simulated network. Cloning shares the network; the router
/// thread stops when the last handle is dropped (or on [`Network::shutdown`]).
#[derive(Clone)]
pub struct Network {
    inner: Arc<Inner>,
    _owner: Arc<OwnerToken>,
}

/// Shuts the router down when the last `Network` clone is dropped.
struct OwnerToken {
    inner: Arc<Inner>,
}

impl Drop for OwnerToken {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        state.shutdown = true;
        drop(state);
        self.inner.cv.notify_all();
    }
}

fn norm_pair(a: NodeAddr, b: NodeAddr) -> (NodeAddr, NodeAddr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Creates a network and starts its router thread.
    pub fn new(cfg: NetConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let tmetrics = TransportMetrics::preregister(&registry);
        let inner = Arc::new(Inner {
            state: Mutex::new(RouterState {
                heap: BinaryHeap::new(),
                endpoints: HashMap::new(),
                partitions: HashSet::new(),
                rng: StdRng::seed_from_u64(cfg.seed),
                cfg,
                shutdown: false,
            }),
            cv: Condvar::new(),
            stats: NetStats::default(),
            registry,
            tmetrics,
            tracer: syd_trace::Tracer::new("transport-sim", crate::TRACE_DEVICE_SIM),
            next_addr: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
        });
        let router_inner = Arc::clone(&inner);
        // A network without its router delivers nothing: construction
        // failure here is unrecoverable, so panicking is the contract.
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name("syd-net-router".into())
            .spawn(move || router_loop(&router_inner))
            .expect("spawn router thread");
        let owner = Arc::new(OwnerToken {
            inner: Arc::clone(&inner),
        });
        Network {
            inner,
            _owner: owner,
        }
    }

    /// Creates a network with the ideal (lossless, instant) configuration.
    pub fn ideal() -> Self {
        Self::new(NetConfig::ideal())
    }

    /// Registers a new endpoint and returns its handle.
    pub fn register(&self) -> Endpoint {
        loop {
            let addr = NodeAddr::new(self.inner.next_addr.fetch_add(1, Ordering::Relaxed));
            if let Ok(ep) = self.register_with_addr(addr) {
                return ep;
            }
        }
    }

    /// Registers an endpoint at an explicit address (tests mirroring the
    /// TCP backend's socket-derived addresses). Errors if taken.
    pub fn register_with_addr(&self, addr: NodeAddr) -> SydResult<Endpoint> {
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut state = self.inner.state.lock();
        if state.endpoints.contains_key(&addr) {
            return Err(SydError::Protocol(format!(
                "sim: address {addr:?} already registered"
            )));
        }
        state.endpoints.insert(
            addr,
            EndpointSlot {
                tx,
                connected: true,
                tap: None,
                notifier: None,
            },
        );
        drop(state);
        Ok(Endpoint {
            addr,
            rx,
            net: self.clone(),
        })
    }

    /// Removes an endpoint; all further traffic to it counts as unreachable.
    pub fn unregister(&self, addr: NodeAddr) {
        let removed = {
            let mut state = self.inner.state.lock();
            state.endpoints.remove(&addr)
        };
        // Dropping the slot disconnects the channel; ping the reactor so
        // an event-driven endpoint observes the terminal `Shutdown`.
        if let Some(slot) = removed {
            if let Some(notifier) = &slot.notifier {
                notifier.notify(addr);
            }
        }
    }

    /// Marks an endpoint (dis)connected — the paper's mobile device going
    /// out of range. Messages to a disconnected endpoint are dropped (or
    /// fail fast, per [`NetConfig::fail_fast_disconnected`]).
    pub fn set_connected(&self, addr: NodeAddr, connected: bool) {
        let mut state = self.inner.state.lock();
        if let Some(slot) = state.endpoints.get_mut(&addr) {
            slot.connected = connected;
        }
    }

    /// True if the endpoint exists and is connected.
    pub fn is_connected(&self, addr: NodeAddr) -> bool {
        let state = self.inner.state.lock();
        state.endpoints.get(&addr).is_some_and(|s| s.connected)
    }

    /// Inserts or removes a bidirectional partition between two endpoints.
    pub fn set_partitioned(&self, a: NodeAddr, b: NodeAddr, partitioned: bool) {
        let mut state = self.inner.state.lock();
        let pair = norm_pair(a, b);
        if partitioned {
            state.partitions.insert(pair);
        } else {
            state.partitions.remove(&pair);
        }
    }

    /// Removes every partition.
    pub fn heal_partitions(&self) {
        let mut state = self.inner.state.lock();
        state.partitions.clear();
    }

    /// Replaces the latency/loss configuration at runtime (the RNG keeps
    /// its state so traffic remains reproducible for a fixed seed).
    pub fn reconfigure(&self, cfg: NetConfig) {
        let mut state = self.inner.state.lock();
        state.cfg = cfg;
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Stops the router thread. Idempotent; messages still in flight are
    /// discarded.
    pub fn shutdown(&self) {
        let mut state = self.inner.state.lock();
        state.shutdown = true;
        drop(state);
        self.inner.cv.notify_all();
    }

    /// Injects an envelope into the network from `env.src`.
    ///
    /// Applies loss and fail-fast rules, samples latency, and schedules
    /// delivery. Returns the encoded size on success. `Unreachable` means
    /// the destination has never been registered (or was unregistered).
    pub fn send(&self, env: Envelope) -> SydResult<usize> {
        let bytes = encode_to_vec(&env);
        let size = bytes.len();
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return Err(SydError::Shutdown);
        }
        self.inner.stats.on_sent(size);
        self.inner.tmetrics.frames_out.inc();
        self.inner.tmetrics.bytes_out.add(size as u64);

        let Some(slot) = state.endpoints.get(&env.dst) else {
            self.inner.stats.on_dropped_unreachable();
            return Err(SydError::Unreachable(env.dst));
        };

        // Fail fast for requests to a disconnected device: synthesize an
        // error response with the same latency as a real round trip half.
        if !slot.connected && state.cfg.fail_fast_disconnected {
            if let Payload::Request(req) = &env.payload {
                let reply = Envelope::new(
                    env.dst,
                    env.src,
                    Payload::Response(Response {
                        id: req.id,
                        result: Err(SydError::Disconnected(env.dst)),
                    }),
                );
                let reply_bytes = encode_to_vec(&reply);
                self.inner.stats.on_dropped_disconnected();
                let due = Instant::now() + sample_latency(&mut state);
                let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
                state.heap.push(Reverse(Scheduled {
                    due,
                    seq,
                    src: env.dst,
                    dst: env.src,
                    bytes: reply_bytes,
                    queue_span: None,
                }));
                drop(state);
                self.inner.cv.notify_all();
                return Ok(size);
            }
        }

        // Random loss.
        let loss = state.cfg.loss;
        if loss > 0.0 && state.rng.gen::<f64>() < loss {
            self.inner.stats.on_dropped_loss();
            return Ok(size);
        }

        let due = Instant::now() + sample_latency(&mut state);
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        state.heap.push(Reverse(Scheduled {
            due,
            seq,
            src: env.src,
            dst: env.dst,
            bytes,
            queue_span: QueueSpan::of(&env.payload),
        }));
        drop(state);
        self.inner.cv.notify_all();
        Ok(size)
    }
}

impl Transport for Network {
    fn kind(&self) -> &'static str {
        "sim"
    }

    fn listen(&self) -> SydResult<Arc<dyn TransportEndpoint>> {
        Ok(Arc::new(self.register()))
    }

    fn metrics(&self) -> &Arc<Registry> {
        &self.inner.registry
    }
}

fn sample_latency(state: &mut RouterState) -> Duration {
    let model = state.cfg.latency;
    if model.jitter.is_zero() {
        return model.base;
    }
    let jitter_micros = state.rng.gen_range(0..=model.jitter.as_micros() as u64);
    model.base + Duration::from_micros(jitter_micros)
}

fn router_loop(inner: &Arc<Inner>) {
    let mut state = inner.state.lock();
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        // Deliver everything due.
        while let Some(Reverse(head)) = state.heap.peek() {
            if head.due > now {
                break;
            }
            let Some(Reverse(msg)) = state.heap.pop() else {
                break;
            };
            deliver(inner, &mut state, msg);
        }
        match state.heap.peek() {
            Some(Reverse(head)) => {
                let wait = head.due.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    inner.cv.wait_for(&mut state, wait);
                }
            }
            None => {
                inner.cv.wait(&mut state);
            }
        }
    }
}

fn deliver(inner: &Inner, state: &mut RouterState, msg: Scheduled) {
    // Partition and connection state are re-checked at delivery time so a
    // partition raised while a message is in flight still swallows it.
    if state.partitions.contains(&norm_pair(msg.src, msg.dst)) {
        inner.stats.on_dropped_partition();
        return;
    }
    match state.endpoints.get(&msg.dst) {
        None => inner.stats.on_dropped_unreachable(),
        Some(slot) if !slot.connected => inner.stats.on_dropped_disconnected(),
        Some(slot) => {
            inner.tmetrics.frames_in.inc();
            inner.tmetrics.bytes_in.add(msg.bytes.len() as u64);
            if let Some(tap) = &slot.tap {
                let _ = tap.send(msg.bytes.clone());
            }
            let queue_span = msg.queue_span;
            if slot.push(msg.dst, SimMsg::Frame(msg.bytes)) {
                inner.stats.on_delivered();
                // Enqueue → delivery is the sim's queueing time; the
                // span hangs off the request's RPC span so the
                // critical-path analyzer can subtract it.
                if let Some(qs) = queue_span {
                    qs.record(&inner.tracer);
                }
            } else {
                inner.stats.on_dropped_unreachable();
            }
        }
    }
}

/// A registered endpoint: the network-facing half of a device.
pub struct Endpoint {
    addr: NodeAddr,
    rx: Receiver<SimMsg>,
    net: Network,
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The network this endpoint belongs to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Sends a payload to `dst`.
    pub fn send(&self, dst: NodeAddr, payload: Payload) -> SydResult<usize> {
        self.net.send(Envelope::new(self.addr, dst, payload))
    }

    fn decode(&self, bytes: &[u8]) -> SydResult<Envelope> {
        let decoded = decode_from_slice(bytes);
        if decoded.is_err() {
            self.net.inner.tmetrics.frame_errors.inc();
        }
        decoded
    }

    /// Blocks until a message arrives (or the endpoint is unregistered).
    /// Synthetic lifecycle events are skipped; use
    /// [`TransportEndpoint::recv_event`] to observe them.
    pub fn recv(&self) -> SydResult<Envelope> {
        loop {
            match self.rx.recv().map_err(|_| SydError::Shutdown)? {
                SimMsg::Frame(bytes) => return self.decode(&bytes),
                SimMsg::Control(_) => {}
            }
        }
    }

    /// Blocks up to `timeout` for a message (lifecycle events skipped).
    pub fn recv_timeout(&self, timeout: Duration) -> SydResult<Envelope> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(left) {
                Ok(SimMsg::Frame(bytes)) => return self.decode(&bytes),
                Ok(SimMsg::Control(_)) => {}
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    return Err(SydError::Timeout(syd_types::RequestId::new(0)))
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(SydError::Shutdown)
                }
            }
        }
    }

    /// Non-blocking receive (lifecycle events skipped).
    pub fn try_recv(&self) -> Option<SydResult<Envelope>> {
        loop {
            match self.rx.try_recv() {
                Ok(SimMsg::Frame(bytes)) => return Some(self.decode(&bytes)),
                Ok(SimMsg::Control(_)) => {}
                Err(crossbeam_channel::TryRecvError::Empty) => return None,
                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                    return Some(Err(SydError::Shutdown))
                }
            }
        }
    }

    fn event_of(&self, msg: SimMsg) -> SydResult<TransportEvent> {
        match msg {
            SimMsg::Frame(bytes) => self.decode(&bytes).map(TransportEvent::Message),
            SimMsg::Control(ev) => Ok(ev),
        }
    }
}

impl TransportEndpoint for Endpoint {
    fn addr(&self) -> NodeAddr {
        self.addr
    }

    fn connect(&self, peer: NodeAddr) -> SydResult<()> {
        // The sim has no connections; validate reachability and emit the
        // synthetic lifecycle event the TCP backend would produce.
        let state = self.net.inner.state.lock();
        if !state.endpoints.contains_key(&peer) {
            return Err(SydError::Unreachable(peer));
        }
        let Some(own) = state.endpoints.get(&self.addr) else {
            return Err(SydError::Shutdown);
        };
        self.net.inner.tmetrics.conns.inc();
        own.push(self.addr, SimMsg::Control(TransportEvent::Connected(peer)));
        Ok(())
    }

    fn send(&self, env: Envelope) -> SydResult<usize> {
        self.net.send(env)
    }

    fn recv_event(&self) -> SydResult<TransportEvent> {
        let msg = self.rx.recv().map_err(|_| SydError::Shutdown)?;
        self.event_of(msg)
    }

    fn recv_event_timeout(&self, timeout: Duration) -> SydResult<TransportEvent> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => self.event_of(msg),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                Err(SydError::Timeout(syd_types::RequestId::new(0)))
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => Err(SydError::Shutdown),
        }
    }

    fn try_recv_event(&self) -> Option<SydResult<TransportEvent>> {
        match self.rx.try_recv() {
            Ok(msg) => Some(self.event_of(msg)),
            Err(crossbeam_channel::TryRecvError::Empty) => None,
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(SydError::Shutdown)),
        }
    }

    fn set_ready_notifier(&self, notifier: Arc<dyn ReadyNotifier>) {
        {
            let mut state = self.net.inner.state.lock();
            if let Some(slot) = state.endpoints.get_mut(&self.addr) {
                slot.notifier = Some(Arc::clone(&notifier));
            }
        }
        // Cover events that were enqueued before installation.
        notifier.notify(self.addr);
    }

    fn set_connected(&self, connected: bool) {
        self.net.set_connected(self.addr, connected);
    }

    fn is_connected(&self) -> bool {
        self.net.is_connected(self.addr)
    }

    fn kill_connections(&self) -> usize {
        0 // the sim keeps no connections to kill
    }

    fn set_frame_tap(&self, tx: Sender<Vec<u8>>) {
        let mut state = self.net.inner.state.lock();
        if let Some(slot) = state.endpoints.get_mut(&self.addr) {
            slot.tap = Some(tx);
        }
    }

    fn close(&self) {
        self.net.unregister(self.addr);
    }
}
