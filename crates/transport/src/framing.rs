//! Length-prefixed framing for the TCP backend.
//!
//! A frame is a 4-byte little-endian length `n` followed by `n` bytes of
//! body — for envelope frames the body is exactly what
//! `syd_wire::encode_to_vec(&envelope)` produces, so a frame body on TCP
//! is byte-identical to the message the sim router delivers.
//!
//! [`FrameDecoder`] makes **no** assumption about read boundaries: bytes
//! may arrive one at a time or with several frames coalesced into one
//! read, exactly as a TCP stream delivers them. The property tests below
//! split encoded frames at every byte boundary and re-assemble them.

use syd_types::{SydError, SydResult};

/// Upper bound on a frame body, mirroring the codec's `MAX_LEN`. A
/// length prefix above this is unrecoverable garbage (we would never
/// resynchronize), so the decoder reports it as a framing error and the
/// connection must be dropped.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of the length prefix.
pub const HEADER_LEN: usize = 4;

/// Encodes one frame: length prefix + body.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    assert!(
        body.len() <= MAX_FRAME_LEN as usize,
        "frame body exceeds MAX_FRAME_LEN"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Incremental frame reassembler over an arbitrary chunking of the byte
/// stream.
///
/// Push bytes with [`FrameDecoder::extend`], pull complete frame bodies
/// with [`FrameDecoder::next_frame`]. Once a framing error is reported
/// the decoder is poisoned — the stream cannot be resynchronized and the
/// connection must be closed.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Appends newly read bytes to the buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing so the buffer does not creep upward on
        // long-lived connections.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one has fully arrived.
    ///
    /// * `Ok(Some(body))` — a complete frame.
    /// * `Ok(None)` — need more bytes.
    /// * `Err(Codec)` — the stream is corrupt (oversized length prefix);
    ///   the decoder stays poisoned and keeps returning the error.
    pub fn next_frame(&mut self) -> SydResult<Option<Vec<u8>>> {
        if self.poisoned {
            return Err(SydError::Codec("framing: poisoned stream".into()));
        }
        let avail = self.buf.len() - self.pos;
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&self.buf[self.pos..self.pos + HEADER_LEN]);
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(SydError::Codec(format!(
                "framing: length {len} exceeds MAX_FRAME_LEN"
            )));
        }
        let total = HEADER_LEN + len as usize;
        if avail < total {
            return Ok(None);
        }
        let body = self.buf[self.pos + HEADER_LEN..self.pos + total].to_vec();
        self.pos += total;
        Ok(Some(body))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn bodies(decoder: &mut FrameDecoder) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(body) = decoder.next_frame().unwrap() {
            out.push(body);
        }
        out
    }

    #[test]
    fn whole_frame_round_trips() {
        let mut d = FrameDecoder::new();
        d.extend(&encode_frame(b"hello"));
        assert_eq!(bodies(&mut d), vec![b"hello".to_vec()]);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn empty_body_is_a_valid_frame() {
        let mut d = FrameDecoder::new();
        d.extend(&encode_frame(b""));
        assert_eq!(bodies(&mut d), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn byte_at_a_time_reassembles() {
        let frame = encode_frame(b"partial reads are the common case");
        let mut d = FrameDecoder::new();
        for (i, b) in frame.iter().enumerate() {
            d.extend(std::slice::from_ref(b));
            let got = d.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "yielded early at byte {i}");
            } else {
                assert_eq!(got.unwrap(), b"partial reads are the common case");
            }
        }
    }

    #[test]
    fn coalesced_frames_split_apart() {
        let mut stream = encode_frame(b"one");
        stream.extend_from_slice(&encode_frame(b"two"));
        stream.extend_from_slice(&encode_frame(b"three"));
        let mut d = FrameDecoder::new();
        d.extend(&stream);
        assert_eq!(
            bodies(&mut d),
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn oversized_length_poisons_the_decoder() {
        let mut d = FrameDecoder::new();
        d.extend(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(d.next_frame().is_err());
        // Poisoned: even after more (valid-looking) bytes, still an error.
        d.extend(&encode_frame(b"x"));
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn buffer_compacts_after_consumption() {
        let mut d = FrameDecoder::new();
        let frame = encode_frame(&vec![7u8; 5000]);
        d.extend(&frame);
        assert!(d.next_frame().unwrap().is_some());
        assert_eq!(d.pending(), 0);
        // Next extend triggers compaction (pos > 4096).
        d.extend(&encode_frame(b"next"));
        assert_eq!(bodies(&mut d), vec![b"next".to_vec()]);
        assert!(d.buf.len() < 100, "buffer not compacted: {}", d.buf.len());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use syd_types::{NodeAddr, RequestId, ServiceName, UserId, Value};
    use syd_wire::{encode_to_vec, Envelope, EventMsg, Payload, Request};

    /// A small generator of structurally varied envelopes.
    fn arb_envelope() -> impl Strategy<Value = Envelope> {
        let arb_value = prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::I64),
            any::<bool>().prop_map(Value::Bool),
            ".{0,40}".prop_map(Value::str),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        ];
        let arb_payload = prop_oneof![
            (any::<u64>(), any::<u64>(), "[a-z]{1,12}", arb_value.clone()).prop_map(
                |(id, caller, method, v)| {
                    Payload::Request(Request {
                        id: RequestId::new(id),
                        caller: UserId::new(caller),
                        target: UserId::default(),
                        credentials: vec![],
                        service: ServiceName::new("svc"),
                        method,
                        args: vec![v].into(),
                        trace: None,
                    })
                }
            ),
            ("[a-z.]{1,16}", any::<u64>(), arb_value).prop_map(|(topic, src, v)| {
                Payload::Event(EventMsg {
                    topic,
                    source: UserId::new(src),
                    payload: v,
                })
            }),
        ];
        (any::<u64>(), any::<u64>(), arb_payload).prop_map(|(src, dst, payload)| {
            Envelope::new(NodeAddr::new(src), NodeAddr::new(dst), payload)
        })
    }

    proptest! {
        /// Satellite: split the encoded stream at *every* byte boundary
        /// (chunk sizes drawn per step) and reassemble; the decoded
        /// envelopes must be identical to what was sent, in order.
        #[test]
        fn any_chunking_reassembles_identically(
            envelopes in proptest::collection::vec(arb_envelope(), 1..6),
            chunk_sizes in proptest::collection::vec(1usize..16, 1..64),
        ) {
            let mut stream = Vec::new();
            let mut expected = Vec::new();
            for env in &envelopes {
                let body = encode_to_vec(env);
                stream.extend_from_slice(&encode_frame(&body));
                expected.push(body);
            }

            let mut d = FrameDecoder::new();
            let mut got = Vec::new();
            let mut off = 0;
            let mut chunk_iter = chunk_sizes.iter().cycle();
            while off < stream.len() {
                let n = (*chunk_iter.next().unwrap()).min(stream.len() - off);
                d.extend(&stream[off..off + n]);
                off += n;
                while let Some(body) = d.next_frame().unwrap() {
                    got.push(body);
                }
            }
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(d.pending(), 0);

            // Reassembled bodies decode back to the original envelopes.
            for (body, env) in got.iter().zip(&envelopes) {
                let decoded: Envelope = syd_wire::decode_from_slice(body).unwrap();
                prop_assert_eq!(&decoded, env);
            }
        }

        /// Degenerate chunkings: the entire multi-frame stream in one
        /// read (full coalescing) and one byte per read both yield the
        /// same frames.
        #[test]
        fn coalesced_equals_byte_at_a_time(
            envelopes in proptest::collection::vec(arb_envelope(), 1..5),
        ) {
            let mut stream = Vec::new();
            for env in &envelopes {
                stream.extend_from_slice(&encode_frame(&encode_to_vec(env)));
            }

            let mut one = FrameDecoder::new();
            one.extend(&stream);
            let mut coalesced = Vec::new();
            while let Some(b) = one.next_frame().unwrap() {
                coalesced.push(b);
            }

            let mut per_byte = FrameDecoder::new();
            let mut dripped = Vec::new();
            for b in &stream {
                per_byte.extend(std::slice::from_ref(b));
                while let Some(body) = per_byte.next_frame().unwrap() {
                    dripped.push(body);
                }
            }
            prop_assert_eq!(coalesced, dripped);
        }
    }
}
