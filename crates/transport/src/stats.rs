//! Network traffic counters.
//!
//! The baseline-vs-SyD experiment (E1 in DESIGN.md) compares *messages and
//! bytes exchanged* between the coordination-link protocol and the
//! "current practice" calendar, so the network keeps cheap atomic counters
//! on every path a message can take.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters maintained by the router. All loads/stores are
/// `Relaxed`: the counters are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct NetStats {
    sent: AtomicU64,
    delivered: AtomicU64,
    bytes_sent: AtomicU64,
    dropped_loss: AtomicU64,
    dropped_partition: AtomicU64,
    dropped_disconnected: AtomicU64,
    dropped_unreachable: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Messages accepted from endpoints.
    pub sent: u64,
    /// Messages handed to a destination endpoint.
    pub delivered: u64,
    /// Total encoded bytes accepted for transmission.
    pub bytes_sent: u64,
    /// Messages dropped by the random-loss model.
    pub dropped_loss: u64,
    /// Messages dropped because src and dst were partitioned.
    pub dropped_partition: u64,
    /// Messages dropped because the destination was disconnected.
    pub dropped_disconnected: u64,
    /// Messages dropped because the destination never registered.
    pub dropped_unreachable: u64,
}

impl StatsSnapshot {
    /// All drops combined.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_loss
            + self.dropped_partition
            + self.dropped_disconnected
            + self.dropped_unreachable
    }
}

impl NetStats {
    pub(crate) fn on_sent(&self, bytes: usize) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn on_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dropped_loss(&self) {
        self.dropped_loss.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dropped_partition(&self) {
        self.dropped_partition.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dropped_disconnected(&self) {
        self.dropped_disconnected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dropped_unreachable(&self) {
        self.dropped_unreachable.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            dropped_loss: self.dropped_loss.load(Ordering::Relaxed),
            dropped_partition: self.dropped_partition.load(Ordering::Relaxed),
            dropped_disconnected: self.dropped_disconnected.load(Ordering::Relaxed),
            dropped_unreachable: self.dropped_unreachable.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Traffic between two snapshots (`later - self`), for scoping a
    /// measurement to one operation.
    pub fn delta(&self, later: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            sent: later.sent - self.sent,
            delivered: later.delivered - self.delivered,
            bytes_sent: later.bytes_sent - self.bytes_sent,
            dropped_loss: later.dropped_loss - self.dropped_loss,
            dropped_partition: later.dropped_partition - self.dropped_partition,
            dropped_disconnected: later.dropped_disconnected - self.dropped_disconnected,
            dropped_unreachable: later.dropped_unreachable - self.dropped_unreachable,
        }
    }

    /// Traffic since an earlier snapshot (`self - earlier`) — the same
    /// arithmetic as [`StatsSnapshot::delta`] but reading naturally at
    /// the call site: `net.stats().since(&before)`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        earlier.delta(self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = NetStats::default();
        stats.on_sent(100);
        stats.on_sent(50);
        stats.on_delivered();
        stats.on_dropped_loss();
        stats.on_dropped_partition();
        stats.on_dropped_disconnected();
        stats.on_dropped_unreachable();
        let s = stats.snapshot();
        assert_eq!(s.sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped_total(), 4);
    }

    #[test]
    fn delta_scopes_a_measurement() {
        let stats = NetStats::default();
        stats.on_sent(10);
        let before = stats.snapshot();
        stats.on_sent(20);
        stats.on_delivered();
        let after = stats.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.sent, 1);
        assert_eq!(d.bytes_sent, 20);
        assert_eq!(d.delivered, 1);
        // `since` is the same delta, phrased from the later snapshot.
        assert_eq!(after.since(&before), d);
    }
}
