//! Framed TCP backend: `syd-wire` envelopes over real sockets.
//!
//! Each endpoint owns one non-blocking `TcpListener` plus a small poll
//! thread that accepts, reads, writes and dials — the adapter/poll split
//! of message-io, scaled down to `std::net`. Frames are the body produced
//! by `syd_wire::encode_to_vec` behind a 4-byte little-endian length
//! prefix (see [`crate::framing`]), so the envelope bytes a peer observes
//! are identical to what the sim backend delivers.
//!
//! **Addressing.** A [`NodeAddr`] *is* the socket address:
//! `(ipv4 as u64) << 16 | port` (see [`node_addr_of`]). Dialing needs no
//! lookup service, and the first frame on every outbound connection is a
//! "hello" carrying the dialer's own listener address so the acceptor can
//! route replies back over the inbound connection (the accepted socket's
//! ephemeral port is not the peer's address).
//!
//! **Connections.** At most one live connection per peer, each with its
//! own write queue. A send to an unconnected peer queues the frame and
//! arms a dial; dial failures synthesize a `Disconnected` error response
//! for every queued request — the same fail-fast surface the sim's
//! `fail_fast_disconnected` rule produces, so the RPC retry layer treats
//! both backends identically. Subsequent dials back off exponentially
//! (10 ms doubling to a 1 s cap) and re-establishing a previously live
//! peer counts `transport.reconnects`. Simultaneous-open ties are broken
//! by address: the connection dialed by the lower [`NodeAddr`] survives.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Condvar, Mutex, MutexGuard};
use syd_telemetry::Registry;
use syd_types::{NodeAddr, RequestId, SydError, SydResult};
use syd_wire::{decode_from_slice, encode_to_vec, Envelope, Payload, Response};

use crate::framing::{encode_frame, FrameDecoder};
use crate::{
    QueueSpan, ReadyNotifier, Transport, TransportEndpoint, TransportEvent, TransportMetrics,
};

/// How long the poll thread sleeps when idle.
const POLL_TICK: Duration = Duration::from_micros(500);
/// Blocking dial timeout (loopback/LAN scale).
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);
/// First retry delay after a failed dial.
const BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Retry delay ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(1);
/// How long `close` keeps flushing queued writes before severing.
const CLOSE_GRACE: Duration = Duration::from_secs(1);
/// Hello frame body: the dialer's `NodeAddr` as 8 LE bytes.
const HELLO_LEN: usize = 8;

/// Maps a socket address to the node address that encodes it.
pub fn node_addr_of(sock: SocketAddrV4) -> NodeAddr {
    NodeAddr::new((u64::from(u32::from(*sock.ip())) << 16) | u64::from(sock.port()))
}

/// Recovers the socket address a TCP-backend node address encodes.
pub fn socket_addr_of(addr: NodeAddr) -> SocketAddrV4 {
    let raw = addr.raw();
    SocketAddrV4::new(Ipv4Addr::from((raw >> 16) as u32), (raw & 0xFFFF) as u16)
}

/// The TCP transport backend: a factory for framed endpoints bound on one
/// local IP. All endpoints share the transport's telemetry registry.
pub struct FramedTcpTransport {
    ip: Ipv4Addr,
    registry: Arc<Registry>,
    metrics: TransportMetrics,
}

impl FramedTcpTransport {
    /// A transport binding endpoints on `ip`.
    pub fn new(ip: Ipv4Addr) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = TransportMetrics::preregister(&registry);
        Self {
            ip,
            registry,
            metrics,
        }
    }

    /// A transport on 127.0.0.1 — the multi-process examples and tests.
    pub fn loopback() -> Self {
        Self::new(Ipv4Addr::LOCALHOST)
    }

    /// Binds an endpoint on an explicit port (0 picks an ephemeral one).
    pub fn listen_on(&self, port: u16) -> SydResult<Arc<FramedTcpEndpoint>> {
        FramedTcpEndpoint::bind(SocketAddrV4::new(self.ip, port), self.metrics.clone())
            .map(Arc::new)
    }
}

impl Transport for FramedTcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn listen(&self) -> SydResult<Arc<dyn TransportEndpoint>> {
        Ok(self.listen_on(0)?)
    }

    fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// One live connection (either direction).
struct Conn {
    stream: TcpStream,
    /// `None` until an inbound connection identifies itself with a hello.
    peer: Option<NodeAddr>,
    /// True while this connection was accepted (vs dialed).
    inbound: bool,
    decoder: FrameDecoder,
    /// Encoded frames (length prefix included) awaiting the socket.
    outq: VecDeque<OutFrame>,
    /// Write offset into the front frame.
    out_pos: usize,
    /// True while the hello frame is still at the front of `outq`.
    hello_queued: bool,
}

/// One encoded frame awaiting a connection's socket, plus the
/// `transport.queue` span it records once fully flushed (traced
/// requests only).
struct OutFrame {
    bytes: Vec<u8>,
    queue_span: Option<QueueSpan>,
}

impl OutFrame {
    fn untraced(bytes: Vec<u8>) -> OutFrame {
        OutFrame {
            bytes,
            queue_span: None,
        }
    }
}

impl Conn {
    fn sever(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A frame waiting for its peer's connection to come up.
struct Pending {
    frame: OutFrame,
    /// Set for request frames so a failed dial can synthesize the
    /// fail-fast `Disconnected` error response.
    request: Option<RequestId>,
}

/// Per-peer connection bookkeeping.
struct PeerSlot {
    conn: Option<u64>,
    queue: VecDeque<Pending>,
    /// A dial for this peer is in flight on the poll thread.
    dialing: bool,
    /// Explicit `connect()` asked for a connection even with no traffic.
    want_connect: bool,
    next_dial: Instant,
    backoff: Duration,
    ever_connected: bool,
}

impl PeerSlot {
    fn new() -> Self {
        Self {
            conn: None,
            queue: VecDeque::new(),
            dialing: false,
            want_connect: false,
            next_dial: Instant::now(),
            backoff: BACKOFF_BASE,
            ever_connected: false,
        }
    }
}

struct State {
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    peers: HashMap<NodeAddr, PeerSlot>,
    connected: bool,
    shutdown: bool,
    /// In-flight dial threads; reaped by the poll loop, joined on close.
    dials: Vec<JoinHandle<()>>,
}

struct Shared {
    addr: NodeAddr,
    state: Mutex<State>,
    cv: Condvar,
    events_tx: Sender<TransportEvent>,
    metrics: TransportMetrics,
    /// Records `transport.queue` spans for traced requests.
    tracer: syd_trace::Tracer,
    tap: Mutex<Option<Sender<Vec<u8>>>>,
    notifier: Mutex<Option<Arc<dyn ReadyNotifier>>>,
}

impl Shared {
    fn emit(&self, ev: TransportEvent) {
        let _ = self.events_tx.send(ev);
        if let Some(notifier) = self.notifier.lock().as_ref() {
            notifier.notify(self.addr);
        }
    }
}

/// A bound TCP endpoint: listener, poll thread, per-peer write queues.
///
/// Closing (explicitly or on drop) flushes queued writes for up to one
/// second, severs connections and joins the poll thread — no thread
/// outlives the endpoint.
pub struct FramedTcpEndpoint {
    addr: NodeAddr,
    shared: Arc<Shared>,
    events_rx: Receiver<TransportEvent>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl FramedTcpEndpoint {
    fn bind(sock: SocketAddrV4, metrics: TransportMetrics) -> SydResult<Self> {
        let listener =
            TcpListener::bind(sock).map_err(|e| SydError::App(format!("tcp bind {sock}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SydError::App(format!("tcp set_nonblocking: {e}")))?;
        let local = match listener
            .local_addr()
            .map_err(|e| SydError::App(format!("tcp local_addr: {e}")))?
        {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(v6) => {
                return Err(SydError::App(format!("tcp bound to ipv6 {v6}")));
            }
        };
        let addr = node_addr_of(local);
        let (events_tx, events_rx) = crossbeam_channel::unbounded();
        let shared = Arc::new(Shared {
            addr,
            state: Mutex::new(State {
                conns: HashMap::new(),
                next_conn_id: 1,
                peers: HashMap::new(),
                connected: true,
                shutdown: false,
                dials: Vec::new(),
            }),
            cv: Condvar::new(),
            events_tx,
            metrics,
            tracer: syd_trace::Tracer::new(
                format!("transport-tcp-{}", local.port()),
                crate::TRACE_DEVICE_TCP,
            ),
            tap: Mutex::new(None),
            notifier: Mutex::new(None),
        });
        let poll_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(format!("syd-tcp-{}", local.port()))
            .spawn(move || poll_loop(&listener, &poll_shared))
            .map_err(|e| SydError::App(format!("tcp poll thread: {e}")))?;
        Ok(Self {
            addr,
            shared,
            events_rx,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The socket address this endpooint listens on.
    pub fn socket_addr(&self) -> SocketAddrV4 {
        socket_addr_of(self.addr)
    }
}

impl TransportEndpoint for FramedTcpEndpoint {
    fn addr(&self) -> NodeAddr {
        self.addr
    }

    fn connect(&self, peer: NodeAddr) -> SydResult<()> {
        if peer == self.addr {
            return Ok(()); // self-delivery is local, never a socket
        }
        let mut state = self.shared.state.lock();
        if state.shutdown {
            return Err(SydError::Shutdown);
        }
        if !state.connected {
            return Err(SydError::Disconnected(self.addr));
        }
        let slot = state.peers.entry(peer).or_insert_with(PeerSlot::new);
        if slot.conn.is_some() || slot.dialing {
            return Ok(()); // double-connect is a no-op
        }
        slot.want_connect = true;
        slot.next_dial = Instant::now();
        drop(state);
        self.shared.cv.notify_all();
        Ok(())
    }

    fn send(&self, env: Envelope) -> SydResult<usize> {
        let body = encode_to_vec(&env);
        let size = body.len();
        let dst = env.dst;
        let mut state = self.shared.state.lock();
        if state.shutdown {
            return Err(SydError::Shutdown);
        }
        if !state.connected {
            return Err(SydError::Disconnected(self.addr));
        }
        self.shared.metrics.frames_out.inc();
        self.shared.metrics.bytes_out.add(size as u64);
        if dst == self.addr {
            // A device talking to itself (coordinators mark their own
            // entities in every §4.3 round) stays off the wire: dialing
            // our own listener would make one socket whose two ends
            // fight the simultaneous-open tie-break — with equal
            // addresses the displaced end severs the surviving one and
            // the frame is lost until the caller's deadline retries.
            drop(state);
            self.shared.metrics.frames_in.inc();
            self.shared.metrics.bytes_in.add(size as u64);
            if let Some(tap) = self.shared.tap.lock().as_ref() {
                let _ = tap.send(body.clone());
            }
            self.shared.emit(TransportEvent::Message(env));
            return Ok(size);
        }
        let frame = OutFrame {
            bytes: encode_frame(&body),
            queue_span: QueueSpan::of(&env.payload),
        };
        let request = match &env.payload {
            Payload::Request(req) => Some(req.id),
            _ => None,
        };
        let live = state.peers.get(&dst).and_then(|slot| slot.conn);
        if let Some(conn) = live.and_then(|id| state.conns.get_mut(&id)) {
            conn.outq.push_back(frame);
            drop(state);
            self.shared.cv.notify_all();
            return Ok(size);
        }
        let slot = state.peers.entry(dst).or_insert_with(PeerSlot::new);
        if slot.conn.is_some() {
            slot.conn = None; // conn id points at a dead connection
        }
        slot.queue.push_back(Pending { frame, request });
        drop(state);
        self.shared.cv.notify_all();
        Ok(size)
    }

    fn recv_event(&self) -> SydResult<TransportEvent> {
        loop {
            match self.events_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(ev) => return Ok(ev),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if self.shared.state.lock().shutdown && self.events_rx.is_empty() {
                        return Err(SydError::Shutdown);
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(SydError::Shutdown)
                }
            }
        }
    }

    fn recv_event_timeout(&self, timeout: Duration) -> SydResult<TransportEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let step = left.min(Duration::from_millis(50));
            match self.events_rx.recv_timeout(step) {
                Ok(ev) => return Ok(ev),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if self.shared.state.lock().shutdown && self.events_rx.is_empty() {
                        return Err(SydError::Shutdown);
                    }
                    if Instant::now() >= deadline {
                        return Err(SydError::Timeout(RequestId::new(0)));
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(SydError::Shutdown)
                }
            }
        }
    }

    fn try_recv_event(&self) -> Option<SydResult<TransportEvent>> {
        match self.events_rx.try_recv() {
            Ok(ev) => Some(Ok(ev)),
            Err(crossbeam_channel::TryRecvError::Empty) => {
                if self.shared.state.lock().shutdown && self.events_rx.is_empty() {
                    Some(Err(SydError::Shutdown))
                } else {
                    None
                }
            }
            Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Err(SydError::Shutdown)),
        }
    }

    fn set_ready_notifier(&self, notifier: Arc<dyn ReadyNotifier>) {
        *self.shared.notifier.lock() = Some(Arc::clone(&notifier));
        // Cover events that were enqueued before installation.
        notifier.notify(self.addr);
    }

    fn set_connected(&self, connected: bool) {
        let mut state = self.shared.state.lock();
        if state.connected == connected {
            return;
        }
        state.connected = connected;
        if !connected {
            sever_all(&self.shared, &mut state);
        }
        drop(state);
        self.shared.cv.notify_all();
    }

    fn is_connected(&self) -> bool {
        self.shared.state.lock().connected
    }

    fn kill_connections(&self) -> usize {
        let mut state = self.shared.state.lock();
        let killed = sever_all(&self.shared, &mut state);
        drop(state);
        self.shared.cv.notify_all();
        killed
    }

    fn set_frame_tap(&self, tx: Sender<Vec<u8>>) {
        *self.shared.tap.lock() = Some(tx);
    }

    fn close(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.shutdown {
                return;
            }
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
        // Dial threads are bounded by DIAL_TIMEOUT; join any stragglers
        // so no thread outlives the endpoint.
        let dials: Vec<JoinHandle<()>> = {
            let mut state = self.shared.state.lock();
            state.dials.drain(..).collect()
        };
        for handle in dials {
            let _ = handle.join();
        }
        // Ping the reactor so an event-driven node drains any buffered
        // events and observes the terminal `Shutdown`.
        let notifier = self.shared.notifier.lock().clone();
        if let Some(notifier) = notifier {
            notifier.notify(self.addr);
        }
    }
}

impl Drop for FramedTcpEndpoint {
    fn drop(&mut self) {
        self.close();
    }
}

/// Severs every live connection, emitting `Disconnected` per known peer.
fn sever_all(shared: &Shared, state: &mut State) -> usize {
    let mut killed = 0;
    for (_, conn) in state.conns.drain() {
        conn.sever();
        killed += 1;
        if let Some(peer) = conn.peer {
            shared.emit(TransportEvent::Disconnected(peer));
        }
    }
    for slot in state.peers.values_mut() {
        slot.conn = None;
    }
    killed
}

fn hello_frame(addr: NodeAddr) -> Vec<u8> {
    encode_frame(&addr.raw().to_le_bytes())
}

fn poll_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut to_dial: Vec<NodeAddr> = Vec::new();
    loop {
        to_dial.clear();
        let mut state = shared.state.lock();
        if state.shutdown {
            flush_on_close(shared, &mut state);
            return;
        }
        let mut progressed = false;

        // Accept new inbound connections.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if !state.connected {
                        drop(stream); // radio off: refuse
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = state.next_conn_id;
                    state.next_conn_id += 1;
                    state.conns.insert(
                        id,
                        Conn {
                            stream,
                            peer: None,
                            inbound: true,
                            decoder: FrameDecoder::new(),
                            outq: VecDeque::new(),
                            out_pos: 0,
                            hello_queued: false,
                        },
                    );
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Service every connection (read, reassemble, write).
        let ids: Vec<u64> = state.conns.keys().copied().collect();
        for id in ids {
            service_conn(shared, &mut state, id, &mut read_buf, &mut progressed);
        }

        // Collect dials that are due.
        let now = Instant::now();
        let connected = state.connected;
        for (&peer, slot) in &mut state.peers {
            if connected
                && slot.conn.is_none()
                && !slot.dialing
                && (!slot.queue.is_empty() || slot.want_connect)
                && now >= slot.next_dial
            {
                slot.dialing = true;
                to_dial.push(peer);
            }
        }

        if to_dial.is_empty() {
            if !progressed {
                shared.cv.wait_for(&mut state, POLL_TICK);
            }
            drop(state);
        } else {
            // Hand each dial to a short-lived thread: connect_timeout
            // blocks for up to DIAL_TIMEOUT, and the poll thread must
            // keep servicing live connections meanwhile.
            for peer in to_dial.drain(..) {
                let dial_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("syd-tcp-dial".into())
                    .spawn(move || dial_peer(&dial_shared, peer));
                match spawned {
                    Ok(handle) => state.dials.push(handle),
                    Err(_) => fail_dial(shared, &mut state, peer),
                }
            }
            state.dials.retain(|h| !h.is_finished());
            drop(state);
        }
    }
}

/// Reads, reassembles frames, and writes for one connection; reaps it on
/// any terminal condition.
fn service_conn(
    shared: &Shared,
    state: &mut State,
    id: u64,
    read_buf: &mut [u8],
    progressed: &mut bool,
) {
    let Some(mut conn) = state.conns.remove(&id) else {
        return;
    };
    let mut alive = true;
    let mut eof = false;

    // Drain the socket into the frame decoder. EOF does not discard what
    // is already buffered: the peer may have sent-then-closed, and those
    // frames must still surface (close() relies on this grace).
    loop {
        match conn.stream.read(read_buf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                *progressed = true;
                conn.decoder.extend(&read_buf[..n]);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                eof = true;
                break;
            }
        }
    }

    // Surface completed frames (hello first on inbound connections).
    while alive {
        match conn.decoder.next_frame() {
            Ok(Some(body)) => {
                *progressed = true;
                if conn.inbound && conn.peer.is_none() {
                    if body.len() != HELLO_LEN {
                        shared.metrics.frame_errors.inc();
                        alive = false;
                        break;
                    }
                    let mut raw_b = [0u8; HELLO_LEN];
                    raw_b.copy_from_slice(&body);
                    let peer = NodeAddr::new(u64::from_le_bytes(raw_b));
                    conn.peer = Some(peer);
                    // Adopt immediately, so `Accepted` is observed before
                    // any message that rode the same read batch.
                    if !adopt_inbound(shared, state, &mut conn, id, peer) {
                        // Our outbound connection won the simultaneous-open
                        // tie: drop this one silently (the dialer's side
                        // applies the mirror rule).
                        conn.sever();
                        return;
                    }
                } else {
                    shared.metrics.frames_in.inc();
                    shared.metrics.bytes_in.add(body.len() as u64);
                    if let Some(tap) = shared.tap.lock().as_ref() {
                        let _ = tap.send(body.clone());
                    }
                    match decode_from_slice::<Envelope>(&body) {
                        Ok(env) => shared.emit(TransportEvent::Message(env)),
                        Err(_) => shared.metrics.frame_errors.inc(),
                    }
                }
            }
            Ok(None) => break,
            Err(_) => {
                shared.metrics.frame_errors.inc();
                alive = false;
                break;
            }
        }
    }

    // Only after the buffered frames have surfaced does EOF retire the
    // connection.
    if eof {
        alive = false;
    }

    // Flush the write queue.
    while alive {
        let Some(front) = conn.outq.front() else {
            break;
        };
        match conn.stream.write(&front.bytes[conn.out_pos..]) {
            Ok(0) => {
                alive = false;
            }
            Ok(n) => {
                *progressed = true;
                conn.out_pos += n;
                if conn.out_pos == front.bytes.len() {
                    if let Some(frame) = conn.outq.pop_front() {
                        // Enqueue → full flush is the TCP backend's
                        // queueing time (dial wait + write-queue wait).
                        if let Some(qs) = frame.queue_span {
                            qs.record(&shared.tracer);
                        }
                    }
                    conn.out_pos = 0;
                    conn.hello_queued = false;
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                alive = false;
            }
        }
    }

    if alive {
        state.conns.insert(id, conn);
    } else {
        conn.sever();
        if let Some(peer) = conn.peer {
            if let Some(slot) = state.peers.get_mut(&peer) {
                if slot.conn == Some(id) {
                    slot.conn = None;
                    shared.emit(TransportEvent::Disconnected(peer));
                }
            }
        }
    }
}

/// An inbound connection just identified itself: route the peer's slot
/// through it, displacing any previous connection. Returns `false` when
/// the simultaneous-open tie-break says our outbound connection wins and
/// the inbound one must be dropped.
fn adopt_inbound(
    shared: &Shared,
    state: &mut State,
    conn: &mut Conn,
    id: u64,
    peer: NodeAddr,
) -> bool {
    let slot = state.peers.entry(peer).or_insert_with(PeerSlot::new);
    let keep_existing = slot.conn.is_some_and(|old_id| {
        state
            .conns
            .get(&old_id)
            .is_some_and(|old| !old.inbound && shared.addr < peer)
    });
    if keep_existing {
        return false;
    }
    let slot = state.peers.entry(peer).or_insert_with(PeerSlot::new);
    if let Some(old_id) = slot.conn.take() {
        if let Some(mut old) = state.conns.remove(&old_id) {
            // Transfer unflushed frames; skip a still-queued
            // hello (the peer dialed us, it knows our address).
            if old.hello_queued {
                old.outq.pop_front();
                old.out_pos = 0;
            }
            conn.outq.extend(old.outq.drain(..));
            old.sever();
            shared.emit(TransportEvent::Disconnected(peer));
        }
    }
    let slot = state.peers.entry(peer).or_insert_with(PeerSlot::new);
    // Any frames queued while unconnected ride this connection.
    for pending in slot.queue.drain(..) {
        conn.outq.push_back(pending.frame);
    }
    slot.conn = Some(id);
    slot.backoff = BACKOFF_BASE;
    shared.metrics.accepts.inc();
    shared.metrics.conns.inc();
    if slot.ever_connected {
        shared.metrics.reconnects.inc();
    }
    slot.ever_connected = true;
    shared.emit(TransportEvent::Accepted(peer));
    true
}

/// Dials one peer on its own short-lived thread; the blocking connect
/// happens here, off the poll thread, and the result is integrated by
/// [`finish_dial`].
fn dial_peer(shared: &Arc<Shared>, peer: NodeAddr) {
    let target = SocketAddr::V4(socket_addr_of(peer));
    let result = TcpStream::connect_timeout(&target, DIAL_TIMEOUT);
    finish_dial(shared, peer, result);
}

/// Integrates a completed dial attempt back into the state.
fn finish_dial(shared: &Arc<Shared>, peer: NodeAddr, result: io::Result<TcpStream>) {
    let mut state = shared.state.lock();
    {
        let slot = state.peers.entry(peer).or_insert_with(PeerSlot::new);
        slot.dialing = false;
        slot.want_connect = false;
    }
    let stream = match result {
        Ok(stream) if !state.shutdown && state.connected => stream,
        // Failed, or shut down / radio off while the dial was in flight.
        _ => {
            fail_dial(shared, &mut state, peer);
            return;
        }
    };
    if state.peers.get(&peer).is_some_and(|s| s.conn.is_some()) {
        // An inbound connection from the peer won the race.
        if let Some(slot) = state.peers.get_mut(&peer) {
            slot.backoff = BACKOFF_BASE;
        }
        return;
    }
    if stream.set_nonblocking(true).is_err() {
        fail_dial(shared, &mut state, peer);
        return;
    }
    let _ = stream.set_nodelay(true);
    let id = state.next_conn_id;
    state.next_conn_id += 1;
    let mut outq = VecDeque::new();
    outq.push_back(OutFrame::untraced(hello_frame(shared.addr)));
    let slot = state.peers.entry(peer).or_insert_with(PeerSlot::new);
    for pending in slot.queue.drain(..) {
        outq.push_back(pending.frame);
    }
    slot.conn = Some(id);
    slot.backoff = BACKOFF_BASE;
    let reconnect = slot.ever_connected;
    slot.ever_connected = true;
    state.conns.insert(
        id,
        Conn {
            stream,
            peer: Some(peer),
            inbound: false,
            decoder: FrameDecoder::new(),
            outq,
            out_pos: 0,
            hello_queued: true,
        },
    );
    shared.metrics.conns.inc();
    if reconnect {
        shared.metrics.reconnects.inc();
    }
    shared.emit(TransportEvent::Connected(peer));
}

/// A dial failed: back off, and fail-fast every queued request with the
/// same `Disconnected` error response the sim synthesizes for requests
/// to a disconnected endpoint.
fn fail_dial(shared: &Shared, state: &mut State, peer: NodeAddr) {
    let self_addr = shared.addr;
    let Some(slot) = state.peers.get_mut(&peer) else {
        return;
    };
    slot.next_dial = Instant::now() + slot.backoff;
    slot.backoff = (slot.backoff * 2).min(BACKOFF_CAP);
    let queued = std::mem::take(&mut slot.queue);
    for pending in queued {
        if let Some(id) = pending.request {
            shared.emit(TransportEvent::Message(Envelope::new(
                peer,
                self_addr,
                Payload::Response(Response {
                    id,
                    result: Err(SydError::Disconnected(peer)),
                }),
            )));
        }
        // Queued events and responses are dropped, like sim loss.
    }
}

/// Best-effort flush of queued writes before the endpoint goes away.
/// Waits on the condvar between rounds so the state lock is released
/// while idle — `close()` callers and late senders are never stalled
/// behind the grace period.
fn flush_on_close(shared: &Shared, state: &mut MutexGuard<'_, State>) {
    let deadline = Instant::now() + CLOSE_GRACE;
    loop {
        let mut pending = false;
        for conn in state.conns.values_mut() {
            while let Some(front) = conn.outq.front() {
                match conn.stream.write(&front.bytes[conn.out_pos..]) {
                    Ok(0) => {
                        conn.outq.clear();
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        if conn.out_pos == front.bytes.len() {
                            if let Some(frame) = conn.outq.pop_front() {
                                if let Some(qs) = frame.queue_span {
                                    qs.record(&shared.tracer);
                                }
                            }
                            conn.out_pos = 0;
                        }
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.outq.clear();
                        break;
                    }
                }
            }
            if !conn.outq.is_empty() {
                pending = true;
            }
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        shared.cv.wait_for(state, POLL_TICK);
    }
    for conn in state.conns.values() {
        conn.sever();
    }
    state.conns.clear();
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn node_addr_socket_addr_round_trip() {
        let sock = SocketAddrV4::new(Ipv4Addr::new(127, 0, 0, 1), 45678);
        let addr = node_addr_of(sock);
        assert_eq!(socket_addr_of(addr), sock);
        // Distinct ports map to distinct addresses.
        assert_ne!(
            node_addr_of(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 1)),
            node_addr_of(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 2)),
        );
    }

    #[test]
    fn hello_frame_is_framed_addr() {
        let addr = NodeAddr::new(0x7F00_0001_ABCD);
        let frame = hello_frame(addr);
        assert_eq!(frame.len(), 4 + HELLO_LEN);
        assert_eq!(&frame[4..], &addr.raw().to_le_bytes());
    }
}
