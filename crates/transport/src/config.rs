//! Network behaviour configuration.

use std::time::Duration;

/// Message latency model: a fixed base plus uniform jitter.
///
/// The prototype's 802.11b LAN had per-hop latencies in the low
/// milliseconds; [`LatencyModel::wireless_lan`] approximates that, while
/// [`LatencyModel::instant`] removes delay entirely for micro-benchmarks
/// that measure middleware cost rather than transport cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Minimum one-way delay applied to every message.
    pub base: Duration,
    /// Additional uniformly distributed delay in `[0, jitter]`.
    pub jitter: Duration,
}

impl LatencyModel {
    /// Zero-delay delivery (still ordered through the router).
    pub const fn instant() -> Self {
        Self {
            base: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// Roughly an early-2000s 802.11b wireless LAN: 2 ms ± 3 ms.
    pub const fn wireless_lan() -> Self {
        Self {
            base: Duration::from_millis(2),
            jitter: Duration::from_millis(3),
        }
    }

    /// A wide-area path: 40 ms ± 20 ms.
    pub const fn wan() -> Self {
        Self {
            base: Duration::from_millis(40),
            jitter: Duration::from_millis(20),
        }
    }

    /// Fixed latency with no jitter.
    pub const fn fixed(base: Duration) -> Self {
        Self {
            base,
            jitter: Duration::ZERO,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::instant()
    }
}

/// Full network configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// One-way delivery latency.
    pub latency: LatencyModel,
    /// Probability in `[0, 1]` that a message is silently lost.
    pub loss: f64,
    /// Seed for the network's deterministic RNG (latency jitter and loss).
    pub seed: u64,
    /// When true, a request sent to a *disconnected* endpoint immediately
    /// produces a `Disconnected` error response (models TCP connection
    /// refused) instead of silently timing out. Random loss is unaffected.
    pub fail_fast_disconnected: bool,
}

impl NetConfig {
    /// Lossless, zero-latency network — the default for unit tests.
    pub fn ideal() -> Self {
        Self {
            latency: LatencyModel::instant(),
            loss: 0.0,
            seed: 0xC0FFEE,
            fail_fast_disconnected: true,
        }
    }

    /// The paper's deployment environment: wireless LAN latencies with a
    /// little loss.
    pub fn wireless_lan() -> Self {
        Self {
            latency: LatencyModel::wireless_lan(),
            loss: 0.005,
            seed: 0xC0FFEE,
            fail_fast_disconnected: true,
        }
    }

    /// Replaces the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the loss probability (builder style).
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }

    /// Replaces the latency model (builder style).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn ideal_is_lossless_and_instant() {
        let cfg = NetConfig::ideal();
        assert_eq!(cfg.loss, 0.0);
        assert_eq!(cfg.latency, LatencyModel::instant());
        assert!(cfg.fail_fast_disconnected);
    }

    #[test]
    fn builders_compose() {
        let cfg = NetConfig::ideal()
            .with_seed(7)
            .with_loss(0.25)
            .with_latency(LatencyModel::wan());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.loss, 0.25);
        assert_eq!(cfg.latency.base, Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_out_of_range_panics() {
        let _ = NetConfig::ideal().with_loss(1.5);
    }

    #[test]
    fn presets_are_sane() {
        assert!(LatencyModel::wireless_lan().base < LatencyModel::wan().base);
        assert_eq!(
            LatencyModel::fixed(Duration::from_millis(9)).jitter,
            Duration::ZERO
        );
    }
}
