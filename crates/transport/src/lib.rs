//! Pluggable transport layer for SyD.
//!
//! The paper's prototype spoke raw TCP sockets between iPAQ handhelds
//! (§3.1, §5.2); our earlier milestones replaced that hardware with a
//! single in-process router thread. This crate makes the substrate a
//! *subsystem*: everything above it (the RPC node, the SyD kernel, the
//! applications) talks to a [`Transport`] adapter and never learns
//! whether frames crossed a channel or a socket.
//!
//! Two backends implement the adapter:
//!
//! * [`SimTransport`] (an alias for [`Network`]) — the simulated
//!   shared-medium network with latency/loss/partition fault models,
//!   moved here from `syd-net` unchanged in behaviour.
//! * [`FramedTcpTransport`] — length-prefixed `syd-wire` envelopes over
//!   non-blocking TCP with a small poll loop, per-peer write queues and
//!   reconnect-with-backoff.
//!
//! Both encode every [`Envelope`] with the same `syd-wire` codec, so the
//! bytes a peer observes are identical regardless of backend (property
//! tested in `tests/byte_identity.rs`), and both thread the same
//! [`TransportMetrics`] counters through a `syd-telemetry` [`Registry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod framing;
pub mod sim;
pub mod stats;
pub mod tcp;

use std::sync::Arc;
use std::time::Duration;

use syd_telemetry::names;
use syd_telemetry::{Counter, Registry};
use syd_types::{NodeAddr, SydResult};
use syd_wire::{Envelope, Payload};

pub use config::{LatencyModel, NetConfig};
pub use sim::{Endpoint, Network, SimTransport};
pub use stats::{NetStats, StatsSnapshot};
pub use tcp::{node_addr_of, socket_addr_of, FramedTcpEndpoint, FramedTcpTransport};

/// Synthetic trace device id for the sim backend's queueing spans —
/// high enough to never collide with a node address.
pub const TRACE_DEVICE_SIM: u64 = u64::MAX;

/// Synthetic trace device id for the TCP backend's queueing spans.
pub const TRACE_DEVICE_TCP: u64 = u64::MAX - 1;

/// Bookkeeping for one pending `transport.queue` span: opened when a
/// traced request is accepted for transmission, recorded — as a child
/// of the request's RPC span — when the backend hands the frame onward
/// (router delivery on the sim, socket flush on TCP). A frame the
/// backend drops (loss, failed dial) simply never records its span;
/// the assembler's lossy mode tolerates the hole.
pub(crate) struct QueueSpan {
    trace: u64,
    /// The request's RPC span id — the queue span's parent.
    rpc_span: u64,
    queued_us: u64,
}

impl QueueSpan {
    /// Opens bookkeeping for a traced request payload, `None` otherwise.
    pub(crate) fn of(payload: &Payload) -> Option<QueueSpan> {
        let Payload::Request(req) = payload else {
            return None;
        };
        req.trace.map(|tc| QueueSpan {
            trace: tc.trace_id,
            rpc_span: tc.span_id,
            queued_us: syd_trace::now_us(),
        })
    }

    /// Records the finished span, ending now.
    pub(crate) fn record(self, tracer: &syd_trace::Tracer) {
        tracer.record_span(
            names::SPAN_TRANSPORT_QUEUE,
            self.trace,
            syd_telemetry::trace::fresh_id(),
            self.rpc_span,
            self.queued_us,
            syd_trace::now_us(),
            &[],
        );
    }
}

/// Something a transport endpoint can observe.
///
/// Lifecycle events ([`TransportEvent::Connected`] and friends) describe
/// *connections*, which only the TCP backend materializes; the sim backend
/// emits them synthetically where the analogue is meaningful (an explicit
/// [`TransportEndpoint::connect`]). Consumers that only care about traffic
/// can ignore everything but [`TransportEvent::Message`].
#[derive(Debug)]
pub enum TransportEvent {
    /// An outbound connection to the peer was established.
    Connected(NodeAddr),
    /// An inbound connection from the peer was accepted.
    Accepted(NodeAddr),
    /// The connection to/from the peer was lost or closed.
    Disconnected(NodeAddr),
    /// A fully reassembled envelope arrived.
    Message(Envelope),
}

/// Readiness callback installed on an endpoint by an event-driven
/// runtime (the `syd-net` reactor).
///
/// Backends call [`ReadyNotifier::notify`] after enqueueing an event on
/// an endpoint that has a notifier installed; the reactor responds by
/// scheduling a drain of that endpoint's event queue via
/// [`TransportEndpoint::try_recv_event`]. Notifications are edge-ish
/// hints, not a precise count: the reactor must drain until empty, and
/// backends may coalesce or over-notify freely. Implementations must
/// not block and must tolerate being called from backend-internal
/// threads while backend locks are held.
pub trait ReadyNotifier: Send + Sync + 'static {
    /// The endpoint at `addr` (its [`TransportEndpoint::addr`]) has at
    /// least one event queued, or has been closed.
    fn notify(&self, addr: NodeAddr);
}

/// A transport backend: a factory for addressed endpoints.
///
/// The two implementations are [`Network`] (simulated) and
/// [`FramedTcpTransport`] (real sockets). `SydEnv`, device runtimes and
/// directory servers take `&dyn Transport`, so the same application code
/// runs on either.
pub trait Transport: Send + Sync + 'static {
    /// Short backend identifier: `"sim"` or `"tcp"`.
    fn kind(&self) -> &'static str;

    /// Opens a new listening endpoint with a fresh address.
    fn listen(&self) -> SydResult<Arc<dyn TransportEndpoint>>;

    /// The telemetry registry holding this backend's
    /// [`TransportMetrics`] counters.
    fn metrics(&self) -> &Arc<Registry>;
}

/// One addressed endpoint of a transport: the network-facing half of a
/// device.
///
/// Endpoints are registered/bound by [`Transport::listen`] and speak in
/// whole [`Envelope`]s; framing, connection management and reconnect
/// policy are the backend's business.
pub trait TransportEndpoint: Send + Sync + 'static {
    /// This endpoint's address. For TCP the address encodes the socket
    /// address (see [`node_addr_of`]); for the sim it is a small integer.
    fn addr(&self) -> NodeAddr;

    /// Eagerly establishes a connection to `peer` (sends connect lazily
    /// otherwise). Emits [`TransportEvent::Connected`] once the peer is
    /// reachable; idempotent when already connected.
    fn connect(&self, peer: NodeAddr) -> SydResult<()>;

    /// Sends an envelope to `env.dst`, returning the encoded byte count
    /// accepted for transmission. Delivery is asynchronous and may still
    /// fail; requests that provably cannot be delivered surface a
    /// synthesized `Disconnected` error response (both backends).
    fn send(&self, env: Envelope) -> SydResult<usize>;

    /// Blocks until the next event (message or lifecycle) arrives.
    /// Returns `Err(Shutdown)` once the endpoint is closed and drained,
    /// and `Err(Codec(_))` for an undecodable frame (the connection
    /// survives; callers should skip and continue).
    fn recv_event(&self) -> SydResult<TransportEvent>;

    /// Like [`TransportEndpoint::recv_event`] with a deadline; returns
    /// `Err(Timeout)` when nothing arrived in time.
    fn recv_event_timeout(&self, timeout: Duration) -> SydResult<TransportEvent>;

    /// Non-blocking poll used by the event-driven runtime: returns the
    /// next queued event, `Some(Err(Shutdown))` once the endpoint is
    /// closed and drained, or `None` when the queue is currently empty.
    /// Never blocks.
    fn try_recv_event(&self) -> Option<SydResult<TransportEvent>>;

    /// Installs a readiness notifier. After installation the backend
    /// calls [`ReadyNotifier::notify`] with this endpoint's address
    /// whenever an event is enqueued (and once immediately on install,
    /// so events that raced installation are not stranded). Replaces
    /// any previous notifier.
    fn set_ready_notifier(&self, notifier: Arc<dyn ReadyNotifier>);

    /// Mobility fault hook: while disconnected the endpoint refuses new
    /// traffic (the paper's device going out of range). The TCP backend
    /// also drops live connections and rejects new accepts.
    fn set_connected(&self, connected: bool);

    /// True while the endpoint is accepting traffic.
    fn is_connected(&self) -> bool;

    /// Fault-injection hook: abruptly severs every live connection (a
    /// kill-the-socket fault) and returns how many were killed. The sim
    /// has no connections and returns 0.
    fn kill_connections(&self) -> usize;

    /// Installs a frame tap: every complete envelope frame delivered to
    /// this endpoint is mirrored (raw bytes, without length prefix) to
    /// `tx` before decoding. Test instrumentation for byte-identity
    /// checks across backends.
    fn set_frame_tap(&self, tx: crossbeam_channel::Sender<Vec<u8>>);

    /// Closes the endpoint: flushes in-flight frames (bounded grace),
    /// severs connections, stops background threads. After close,
    /// [`TransportEndpoint::recv_event`] drains buffered events and then
    /// returns `Err(Shutdown)`. Idempotent.
    fn close(&self);
}

/// Preregistered counters shared by every backend. All operations are
/// relaxed atomics — statistics, not synchronization.
#[derive(Clone)]
pub struct TransportMetrics {
    /// `transport.conns` — connections established (outbound + inbound).
    pub conns: Counter,
    /// `transport.accepts` — inbound connections accepted.
    pub accepts: Counter,
    /// `transport.reconnects` — re-established connections to a peer
    /// that had already been connected before.
    pub reconnects: Counter,
    /// `transport.bytes_in` — payload bytes received (frame bodies).
    pub bytes_in: Counter,
    /// `transport.bytes_out` — payload bytes accepted for transmission.
    pub bytes_out: Counter,
    /// `transport.frames_in` — complete frames received.
    pub frames_in: Counter,
    /// `transport.frames_out` — frames accepted for transmission.
    pub frames_out: Counter,
    /// `transport.frame_errors` — frames that failed framing or envelope
    /// decoding. Zero in every clean run.
    pub frame_errors: Counter,
}

impl TransportMetrics {
    /// Registers (or re-binds) the counters on `registry`.
    pub fn preregister(registry: &Registry) -> Self {
        Self {
            conns: registry.counter(names::TRANSPORT_CONNS),
            accepts: registry.counter(names::TRANSPORT_ACCEPTS),
            reconnects: registry.counter(names::TRANSPORT_RECONNECTS),
            bytes_in: registry.counter(names::TRANSPORT_BYTES_IN),
            bytes_out: registry.counter(names::TRANSPORT_BYTES_OUT),
            frames_in: registry.counter(names::TRANSPORT_FRAMES_IN),
            frames_out: registry.counter(names::TRANSPORT_FRAMES_OUT),
            frame_errors: registry.counter(names::TRANSPORT_FRAME_ERRORS),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod trait_tests {
    use super::*;

    #[test]
    fn metrics_preregister_is_idempotent() {
        let registry = Registry::new();
        let a = TransportMetrics::preregister(&registry);
        let b = TransportMetrics::preregister(&registry);
        a.bytes_out.add(10);
        assert_eq!(b.bytes_out.get(), 10, "handles share one counter");
        assert_eq!(
            registry
                .get_counter(names::TRANSPORT_BYTES_OUT)
                .unwrap()
                .get(),
            10
        );
    }
}
