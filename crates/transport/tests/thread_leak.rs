//! Thread hygiene: closed endpoints must leave no poll threads behind.
//! Lives in its own integration binary so the count isn't perturbed by
//! sibling tests running concurrently.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::time::{Duration, Instant};

use syd_transport::{Transport, TransportEvent};

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, Iterator::count)
}

#[test]
fn closed_endpoints_leak_no_threads() {
    let baseline = thread_count();

    for _ in 0..3 {
        let tcp = syd_transport::FramedTcpTransport::loopback();
        let a = tcp.listen().unwrap();
        let b = tcp.listen().unwrap();
        b.connect(a.addr()).unwrap();
        // Wait for the handshake so there is a real connection to tear down.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match b.recv_event_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok(TransportEvent::Connected(_)) => break,
                Ok(_) => {}
                Err(err) => panic!("waiting for Connected: {err}"),
            }
        }
        a.close();
        b.close();
    }

    // close() joins the poll threads, so the count must return to (or
    // below) the baseline promptly.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = thread_count();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak: {baseline} before, {now} after"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
