//! Behavioural tests for the simulated backend, carried over verbatim
//! from `syd-net`'s router module when the simulator moved into
//! `syd-transport` — the move must not change router semantics.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::time::{Duration, Instant};

use syd_telemetry::names;
use syd_transport::{Endpoint, LatencyModel, NetConfig, Network};
use syd_types::{NodeAddr, RequestId, ServiceName, SydError, UserId, Value};
use syd_wire::{EventMsg, Payload, Request};

fn event(topic: &str) -> Payload {
    Payload::Event(EventMsg {
        topic: topic.into(),
        source: UserId::new(1),
        payload: Value::Null,
    })
}

fn request(id: u64) -> Payload {
    Payload::Request(Request {
        id: RequestId::new(id),
        caller: UserId::new(1),
        target: UserId::default(),
        credentials: vec![],
        service: ServiceName::new("svc"),
        method: "m".into(),
        args: vec![].into(),
        trace: None,
    })
}

#[test]
fn point_to_point_delivery() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    a.send(b.addr(), event("hello")).unwrap();
    let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(env.src, a.addr());
    assert_eq!(env.dst, b.addr());
    match env.payload {
        Payload::Event(ev) => assert_eq!(ev.topic, "hello"),
        other => panic!("unexpected payload {other:?}"),
    }
    // The router increments `delivered` after handing the bytes to
    // the endpoint, so the receiver can get here first — wait for
    // the counter rather than racing it.
    let deadline = Instant::now() + Duration::from_secs(1);
    while net.stats().delivered < 1 {
        assert!(Instant::now() < deadline, "delivery uncounted");
        std::thread::yield_now();
    }
    let stats = net.stats();
    assert_eq!(stats.sent, 1);
    assert_eq!(stats.delivered, 1);
    assert!(stats.bytes_sent > 0);
}

#[test]
fn fifo_order_preserved_with_fixed_latency() {
    let net = Network::new(
        NetConfig::ideal().with_latency(LatencyModel::fixed(Duration::from_millis(1))),
    );
    let a = net.register();
    let b = net.register();
    for i in 0..50 {
        a.send(b.addr(), event(&format!("e{i}"))).unwrap();
    }
    for i in 0..50 {
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        match env.payload {
            Payload::Event(ev) => assert_eq!(ev.topic, format!("e{i}")),
            other => panic!("unexpected payload {other:?}"),
        }
    }
}

#[test]
fn unreachable_destination_is_an_error() {
    let net = Network::ideal();
    let a = net.register();
    let err = a.send(NodeAddr::new(9999), event("x")).unwrap_err();
    assert_eq!(err, SydError::Unreachable(NodeAddr::new(9999)));
    assert_eq!(net.stats().dropped_unreachable, 1);
}

#[test]
fn unregister_makes_endpoint_unreachable() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    net.unregister(b.addr());
    assert!(a.send(b.addr(), event("x")).is_err());
}

#[test]
fn total_loss_drops_everything() {
    let net = Network::new(NetConfig::ideal().with_loss(1.0));
    let a = net.register();
    let b = net.register();
    a.send(b.addr(), event("x")).unwrap();
    assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
    assert_eq!(net.stats().dropped_loss, 1);
    assert_eq!(net.stats().delivered, 0);
}

#[test]
fn partition_blocks_both_directions() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    net.set_partitioned(a.addr(), b.addr(), true);
    a.send(b.addr(), event("ab")).unwrap();
    b.send(a.addr(), event("ba")).unwrap();
    assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
    assert!(a.recv_timeout(Duration::from_millis(50)).is_err());
    assert_eq!(net.stats().dropped_partition, 2);

    net.heal_partitions();
    a.send(b.addr(), event("after")).unwrap();
    assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
}

#[test]
fn disconnected_request_fails_fast_with_error_response() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    net.set_connected(b.addr(), false);
    a.send(b.addr(), request(42)).unwrap();
    let env = a.recv_timeout(Duration::from_secs(1)).unwrap();
    match env.payload {
        Payload::Response(resp) => {
            assert_eq!(resp.id, RequestId::new(42));
            assert_eq!(resp.result, Err(SydError::Disconnected(b.addr())));
        }
        other => panic!("unexpected payload {other:?}"),
    }
}

#[test]
fn disconnected_event_is_silently_dropped() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    net.set_connected(b.addr(), false);
    a.send(b.addr(), event("x")).unwrap();
    assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
    assert_eq!(net.stats().dropped_disconnected, 1);
}

#[test]
fn reconnect_restores_delivery() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    net.set_connected(b.addr(), false);
    assert!(!net.is_connected(b.addr()));
    net.set_connected(b.addr(), true);
    assert!(net.is_connected(b.addr()));
    a.send(b.addr(), event("back")).unwrap();
    assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
}

#[test]
fn latency_delays_delivery() {
    let net = Network::new(
        NetConfig::ideal().with_latency(LatencyModel::fixed(Duration::from_millis(30))),
    );
    let a = net.register();
    let b = net.register();
    let start = Instant::now();
    a.send(b.addr(), event("slow")).unwrap();
    b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert!(
        start.elapsed() >= Duration::from_millis(25),
        "delivered too early: {:?}",
        start.elapsed()
    );
}

#[test]
fn same_seed_same_loss_pattern() {
    let run = |seed: u64| -> Vec<bool> {
        let net = Network::new(NetConfig::ideal().with_loss(0.5).with_seed(seed));
        let a = net.register();
        let b = net.register();
        (0..40)
            .map(|_| {
                a.send(b.addr(), event("x")).unwrap();
                b.recv_timeout(Duration::from_millis(20)).is_ok()
            })
            .collect()
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn send_after_shutdown_errors() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    net.shutdown();
    assert_eq!(
        a.send(b.addr(), event("x")).unwrap_err(),
        SydError::Shutdown
    );
}

#[test]
fn stats_delta_counts_one_exchange() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    let before = net.stats();
    a.send(b.addr(), event("one")).unwrap();
    b.recv_timeout(Duration::from_secs(1)).unwrap();
    // The router increments `delivered` after handing the bytes to the
    // endpoint, so wait for the counter rather than racing it.
    let deadline = Instant::now() + Duration::from_secs(1);
    while net.stats().delivered < before.delivered + 1 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    let delta = before.delta(&net.stats());
    assert_eq!(delta.sent, 1);
    assert_eq!(delta.delivered, 1);
}

#[test]
fn reconfigure_changes_behaviour_at_runtime() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    a.send(b.addr(), event("t")).unwrap();
    assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());

    // Switch to total loss: traffic stops.
    net.reconfigure(NetConfig::ideal().with_loss(1.0));
    a.send(b.addr(), event("t")).unwrap();
    assert!(b.recv_timeout(Duration::from_millis(50)).is_err());

    // And back.
    net.reconfigure(NetConfig::ideal());
    a.send(b.addr(), event("t")).unwrap();
    assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
}

#[test]
fn try_recv_is_nonblocking() {
    let net = Network::ideal();
    let a = net.register();
    let b = net.register();
    assert!(b.try_recv().is_none());
    a.send(b.addr(), event("t")).unwrap();
    let deadline = Instant::now() + Duration::from_secs(1);
    loop {
        match b.try_recv() {
            Some(Ok(env)) => {
                assert_eq!(env.src, a.addr());
                break;
            }
            Some(Err(e)) => panic!("decode error: {e}"),
            None => assert!(Instant::now() < deadline, "never arrived"),
        }
    }
}

#[test]
fn many_endpoints_share_one_router() {
    let net = Network::ideal();
    let endpoints: Vec<Endpoint> = (0..32).map(|_| net.register()).collect();
    // All-to-one burst.
    for ep in &endpoints[1..] {
        ep.send(endpoints[0].addr(), event("t")).unwrap();
    }
    for _ in 1..32 {
        endpoints[0].recv_timeout(Duration::from_secs(1)).unwrap();
    }
    assert_eq!(net.stats().delivered, 31);
}

mod as_transport {
    //! The simulator seen through the `Transport` trait.

    use super::*;
    use std::sync::Arc;
    use syd_transport::{Transport, TransportEndpoint, TransportEvent};
    use syd_wire::{encode_to_vec, Envelope};

    #[test]
    fn listen_and_message_events() {
        let net = Network::ideal();
        let a = net.listen().unwrap();
        let b = net.listen().unwrap();
        assert_eq!(net.kind(), "sim");
        let env = Envelope::new(a.addr(), b.addr(), event("via-trait"));
        a.send(env.clone()).unwrap();
        match b.recv_event_timeout(Duration::from_secs(1)).unwrap() {
            TransportEvent::Message(got) => assert_eq!(got, env),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn connect_emits_synthetic_connected_event() {
        let net = Network::ideal();
        let a = net.listen().unwrap();
        let b = net.listen().unwrap();
        a.connect(b.addr()).unwrap();
        match a.recv_event_timeout(Duration::from_secs(1)).unwrap() {
            TransportEvent::Connected(peer) => assert_eq!(peer, b.addr()),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(
            net.metrics()
                .get_counter(names::TRANSPORT_CONNS)
                .unwrap()
                .get(),
            1
        );
        // Connecting to a never-registered peer is an error.
        assert!(a.connect(NodeAddr::new(77_777)).is_err());
    }

    #[test]
    fn close_unregisters_and_recv_reports_shutdown() {
        let net = Network::ideal();
        let a = net.listen().unwrap();
        let b = net.listen().unwrap();
        b.close();
        assert!(a
            .send(Envelope::new(a.addr(), b.addr(), event("x")))
            .is_err());
        assert_eq!(
            b.recv_event_timeout(Duration::from_millis(50)).unwrap_err(),
            SydError::Shutdown
        );
    }

    #[test]
    fn frame_tap_mirrors_delivered_bytes() {
        let net = Network::ideal();
        let a = net.listen().unwrap();
        let b = net.listen().unwrap();
        let (tap_tx, tap_rx) = crossbeam_channel::unbounded();
        b.set_frame_tap(tap_tx);
        let env = Envelope::new(a.addr(), b.addr(), event("tapped"));
        a.send(env.clone()).unwrap();
        let bytes = tap_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(bytes, encode_to_vec(&env));
    }

    #[test]
    fn transport_counters_track_traffic() {
        let net = Network::ideal();
        let a = net.listen().unwrap();
        let b: Arc<dyn TransportEndpoint> = net.listen().unwrap();
        let env = Envelope::new(a.addr(), b.addr(), event("counted"));
        let n = a.send(env).unwrap();
        match b.recv_event_timeout(Duration::from_secs(1)).unwrap() {
            TransportEvent::Message(_) => {}
            other => panic!("unexpected event {other:?}"),
        }
        let m = net.metrics();
        assert_eq!(m.get_counter(names::TRANSPORT_FRAMES_OUT).unwrap().get(), 1);
        assert_eq!(
            m.get_counter(names::TRANSPORT_BYTES_OUT).unwrap().get(),
            n as u64
        );
        assert_eq!(
            m.get_counter(names::TRANSPORT_FRAME_ERRORS).unwrap().get(),
            0
        );
    }

    #[test]
    fn explicit_address_registration_rejects_duplicates() {
        let net = Network::ideal();
        let addr = NodeAddr::new(0xABCD_EF01);
        let _ep = net.register_with_addr(addr).unwrap();
        assert!(net.register_with_addr(addr).is_err());
    }
}
