//! Byte-identity across backends: for the same RPC traffic, the frame
//! bodies a peer observes over loopback TCP are byte-for-byte identical
//! to the messages the sim router delivers — both are exactly
//! `syd_wire::encode_to_vec(&envelope)`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::time::Duration;

use syd_telemetry::names;
use syd_transport::{FramedTcpTransport, Network, Transport, TransportEndpoint};
use syd_types::{NodeAddr, RequestId, ServiceName, SydError, UserId, Value};
use syd_wire::{decode_from_slice, Envelope, EventMsg, Payload, Request, Response};

const TAP_WAIT: Duration = Duration::from_secs(5);

/// Structurally varied RPC traffic: request, response (ok + err), event.
fn sample_envelopes(src: NodeAddr, dst: NodeAddr) -> Vec<Envelope> {
    vec![
        Envelope::new(
            src,
            dst,
            Payload::Request(Request {
                id: RequestId::new(7),
                caller: UserId::new(1),
                target: UserId::new(2),
                credentials: vec![0xAB, 0xCD],
                service: ServiceName::new("syd.calendar"),
                method: "schedule_meeting".into(),
                args: vec![Value::str("standup"), Value::I64(9)].into(),
                trace: None,
            }),
        ),
        Envelope::new(
            src,
            dst,
            Payload::Response(Response {
                id: RequestId::new(7),
                result: Ok(Value::list([Value::Bool(true), Value::I64(42)])),
            }),
        ),
        Envelope::new(
            src,
            dst,
            Payload::Response(Response {
                id: RequestId::new(8),
                result: Err(SydError::App("slot taken".into())),
            }),
        ),
        Envelope::new(
            src,
            dst,
            Payload::Event(EventMsg {
                topic: "link.promoted".into(),
                source: UserId::new(1),
                payload: Value::Bytes(vec![1, 2, 3, 4, 5]),
            }),
        ),
    ]
}

#[test]
fn sim_and_tcp_deliver_identical_envelope_bytes() {
    // A TCP pair on loopback, with a frame tap on the receiver.
    let tcp = FramedTcpTransport::loopback();
    let a_tcp = tcp.listen().unwrap();
    let b_tcp = tcp.listen().unwrap();
    let (tcp_tap_tx, tcp_tap_rx) = crossbeam_channel::unbounded();
    b_tcp.set_frame_tap(tcp_tap_tx);

    // A sim pair registered at the *same* node addresses, so the encoded
    // src/dst fields match bit for bit.
    let sim = Network::ideal();
    let a_sim = sim.register_with_addr(a_tcp.addr()).unwrap();
    let b_sim = sim.register_with_addr(b_tcp.addr()).unwrap();
    let (sim_tap_tx, sim_tap_rx) = crossbeam_channel::unbounded();
    b_sim.set_frame_tap(sim_tap_tx);

    for env in sample_envelopes(a_tcp.addr(), b_tcp.addr()) {
        a_tcp.send(env.clone()).unwrap();
        TransportEndpoint::send(&a_sim, env.clone()).unwrap();

        let tcp_bytes = tcp_tap_rx.recv_timeout(TAP_WAIT).expect("tcp frame");
        let sim_bytes = sim_tap_rx.recv_timeout(TAP_WAIT).expect("sim frame");
        assert_eq!(
            tcp_bytes, sim_bytes,
            "backends disagree on the wire image of {env:?}"
        );
        // And the shared image decodes back to the original envelope.
        let decoded: Envelope = decode_from_slice(&tcp_bytes).unwrap();
        assert_eq!(decoded, env);
    }

    // A clean run: no framing or decode errors on either backend.
    for transport in [tcp.metrics(), sim.metrics()] {
        assert_eq!(
            transport
                .get_counter(names::TRANSPORT_FRAME_ERRORS)
                .unwrap()
                .get(),
            0
        );
    }
}
