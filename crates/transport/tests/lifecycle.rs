//! Connection lifecycle coverage for the TCP backend: event ordering,
//! idempotent connects, listener port reuse, and graceful shutdown with
//! in-flight frames.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::Arc;
use std::time::{Duration, Instant};

use syd_telemetry::names;
use syd_transport::{
    FramedTcpEndpoint, FramedTcpTransport, Transport, TransportEndpoint, TransportEvent,
};
use syd_types::{NodeAddr, SydError, UserId, Value};
use syd_wire::{Envelope, EventMsg, Payload};

const EVENT_WAIT: Duration = Duration::from_secs(5);

fn event_env(src: NodeAddr, dst: NodeAddr, tag: i64) -> Envelope {
    Envelope::new(
        src,
        dst,
        Payload::Event(EventMsg {
            topic: "lifecycle".into(),
            source: UserId::new(1),
            payload: Value::I64(tag),
        }),
    )
}

/// Blocks until `ep` observes an event `pred` accepts, panicking on
/// shutdown or deadline. Returns the skipped-over events for callers that
/// assert on ordering.
fn wait_for_event(
    ep: &Arc<FramedTcpEndpoint>,
    what: &str,
    mut pred: impl FnMut(&TransportEvent) -> bool,
) -> (TransportEvent, Vec<TransportEvent>) {
    let deadline = Instant::now() + EVENT_WAIT;
    let mut skipped = Vec::new();
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            !left.is_zero(),
            "timed out waiting for {what}; saw {skipped:?}"
        );
        match ep.recv_event_timeout(left) {
            Ok(ev) if pred(&ev) => return (ev, skipped),
            Ok(ev) => skipped.push(ev),
            Err(SydError::Timeout(_)) => {}
            Err(err) => panic!("waiting for {what}: {err}"),
        }
    }
}

#[test]
fn accept_disconnect_reconnect_event_ordering() {
    let tcp = FramedTcpTransport::loopback();
    let a = tcp.listen_on(0).unwrap();
    let b = tcp.listen_on(0).unwrap();

    // Explicit connect: dialer sees Connected, acceptor sees Accepted.
    b.connect(a.addr()).unwrap();
    wait_for_event(
        &b,
        "b Connected",
        |ev| matches!(ev, TransportEvent::Connected(p) if *p == a.addr()),
    );
    wait_for_event(
        &a,
        "a Accepted",
        |ev| matches!(ev, TransportEvent::Accepted(p) if *p == b.addr()),
    );

    // Kill the socket out from under both sides.
    assert_eq!(b.kill_connections(), 1);
    wait_for_event(
        &b,
        "b Disconnected",
        |ev| matches!(ev, TransportEvent::Disconnected(p) if *p == a.addr()),
    );
    wait_for_event(
        &a,
        "a Disconnected",
        |ev| matches!(ev, TransportEvent::Disconnected(p) if *p == b.addr()),
    );

    // Traffic after the cut transparently reconnects; the disconnect event
    // always precedes the re-established connection's events.
    b.send(event_env(b.addr(), a.addr(), 1)).unwrap();
    wait_for_event(
        &b,
        "b reConnected",
        |ev| matches!(ev, TransportEvent::Connected(p) if *p == a.addr()),
    );
    let (_, before_msg) = wait_for_event(&a, "a Message after reconnect", |ev| {
        matches!(ev, TransportEvent::Message(env)
            if matches!(&env.payload, Payload::Event(e) if e.payload == Value::I64(1)))
    });
    assert!(
        before_msg
            .iter()
            .any(|ev| matches!(ev, TransportEvent::Accepted(p) if *p == b.addr())),
        "re-accept must precede the message; saw {before_msg:?}"
    );
    // Both endpoints share this transport's registry, so the single
    // re-established link counts once per side: dialer + acceptor.
    assert_eq!(
        tcp.metrics()
            .get_counter(names::TRANSPORT_RECONNECTS)
            .unwrap()
            .get(),
        2
    );

    a.close();
    b.close();
}

#[test]
fn double_connect_to_same_peer_is_idempotent() {
    let tcp = FramedTcpTransport::loopback();
    let a = tcp.listen_on(0).unwrap();
    let b = tcp.listen_on(0).unwrap();

    b.connect(a.addr()).unwrap();
    wait_for_event(
        &b,
        "Connected",
        |ev| matches!(ev, TransportEvent::Connected(p) if *p == a.addr()),
    );
    // Second connect: no-op, no second connection, no second event.
    b.connect(a.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    match b.recv_event_timeout(Duration::from_millis(50)) {
        Err(SydError::Timeout(_)) => {}
        other => panic!("expected no further events, got {other:?}"),
    }
    // One logical connection, counted once per sharing endpoint (dialer
    // `conns`, acceptor `accepts` + `conns`) — and exactly once each.
    assert_eq!(
        tcp.metrics()
            .get_counter(names::TRANSPORT_CONNS)
            .unwrap()
            .get(),
        2
    );
    assert_eq!(
        tcp.metrics()
            .get_counter(names::TRANSPORT_ACCEPTS)
            .unwrap()
            .get(),
        1
    );

    a.close();
    b.close();
}

#[test]
fn listener_port_is_reusable_after_clean_close() {
    let tcp = FramedTcpTransport::loopback();
    let server = tcp.listen_on(0).unwrap();
    let port = server.socket_addr().port();
    let client = tcp.listen_on(0).unwrap();

    client.connect(server.addr()).unwrap();
    wait_for_event(
        &client,
        "Connected",
        |ev| matches!(ev, TransportEvent::Connected(p) if *p == server.addr()),
    );

    // Client closes first (it takes the TIME_WAIT), then the server; the
    // port must be immediately rebindable.
    client.close();
    wait_for_event(&server, "Disconnected", |ev| {
        matches!(ev, TransportEvent::Disconnected(_))
    });
    server.close();

    let rebound = tcp.listen_on(port).expect("rebind same port");
    assert_eq!(rebound.socket_addr().port(), port);
    rebound.close();
}

#[test]
fn close_flushes_in_flight_frames() {
    let tcp = FramedTcpTransport::loopback();
    let a = tcp.listen_on(0).unwrap();
    let b = tcp.listen_on(0).unwrap();

    b.connect(a.addr()).unwrap();
    wait_for_event(&b, "Connected", |ev| {
        matches!(ev, TransportEvent::Connected(_))
    });

    const N: i64 = 50;
    for tag in 0..N {
        b.send(event_env(b.addr(), a.addr(), tag)).unwrap();
    }
    // Close immediately: everything queued must still reach `a` (bounded
    // grace flush), in order.
    b.close();

    let mut next = 0;
    while next < N {
        let (ev, _) = wait_for_event(&a, "flushed message", |ev| {
            matches!(ev, TransportEvent::Message(_))
        });
        let TransportEvent::Message(env) = ev else {
            unreachable!()
        };
        let Payload::Event(e) = env.payload else {
            panic!("unexpected payload")
        };
        assert_eq!(e.payload, Value::I64(next), "frames reordered or lost");
        next += 1;
    }
    a.close();
}
