//! ECA (event-condition-action) triggers.
//!
//! §5.3: the prototype implemented automatic updates with Oracle triggers
//! calling Java stored procedures, and planned to move triggers into the
//! middleware for database independence. This module is the store-level
//! half (the Oracle-style route); `syd-core::events` provides the
//! middleware-level half, and benchmark `ablation_triggers` compares them.
//!
//! Semantics:
//!
//! * **Before** triggers run while the mutation is being validated and may
//!   **veto** it by returning an error (the statement fails, nothing is
//!   applied). They must be pure row checks — their context carries no
//!   store handle, so they cannot re-enter the engine.
//! * **After** triggers run once the statement has been applied and the
//!   table latch released; they receive a [`crate::Store`] handle and may
//!   freely perform further operations (including on the same table) — this
//!   is the hook the SyD kernel uses to launch link actions. An error from
//!   an after trigger propagates to the caller but does **not** undo the
//!   already-applied statement, matching the prototype's post-commit
//!   stored-procedure behaviour.

use std::sync::Arc;

use syd_types::{SydResult, Value};

use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::store::Store;

/// Which mutation fires the trigger.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TriggerEvent {
    /// Row inserted.
    Insert,
    /// Row updated.
    Update,
    /// Row deleted.
    Delete,
}

/// When the trigger runs relative to the mutation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriggerTiming {
    /// Before the mutation; may veto.
    Before,
    /// After the mutation; observes it.
    After,
}

/// Context handed to a trigger action, one row at a time.
pub struct TriggerCtx<'a> {
    /// Store handle — `Some` only for *after* triggers (see module docs).
    pub store: Option<&'a Store>,
    /// Table the mutation targets.
    pub table: &'a str,
    /// The firing event.
    pub event: TriggerEvent,
    /// Row values before the mutation (`Update`/`Delete`).
    pub old: Option<&'a [Value]>,
    /// Row values after the mutation (`Insert`/`Update`).
    pub new: Option<&'a [Value]>,
    /// Schema of the table, for name-based cell access.
    pub schema: &'a Schema,
}

impl TriggerCtx<'_> {
    /// Cell of the *new* row by column name.
    pub fn new_cell(&self, column: &str) -> SydResult<&Value> {
        let idx = self.schema.column_index(column)?;
        self.new
            .map(|row| &row[idx])
            .ok_or_else(|| syd_types::SydError::Protocol("trigger has no new row".into()))
    }

    /// Cell of the *old* row by column name.
    pub fn old_cell(&self, column: &str) -> SydResult<&Value> {
        let idx = self.schema.column_index(column)?;
        self.old
            .map(|row| &row[idx])
            .ok_or_else(|| syd_types::SydError::Protocol("trigger has no old row".into()))
    }
}

/// Action callback type.
pub type TriggerFn = Arc<dyn Fn(&TriggerCtx<'_>) -> SydResult<()> + Send + Sync>;

/// A registered trigger.
#[derive(Clone)]
pub struct Trigger {
    /// Unique trigger name (used for removal).
    pub name: String,
    /// Table it watches.
    pub table: String,
    /// Events it fires on.
    pub events: Vec<TriggerEvent>,
    /// Before (veto) or after (observe).
    pub timing: TriggerTiming,
    /// Optional row condition: evaluated against the *new* row for
    /// insert/update and the *old* row for delete. The trigger fires only
    /// when the condition holds.
    pub condition: Option<Predicate>,
    /// The action.
    pub action: TriggerFn,
}

impl Trigger {
    /// Builds an after-trigger with no condition.
    pub fn after(
        name: impl Into<String>,
        table: impl Into<String>,
        events: Vec<TriggerEvent>,
        action: impl Fn(&TriggerCtx<'_>) -> SydResult<()> + Send + Sync + 'static,
    ) -> Self {
        Trigger {
            name: name.into(),
            table: table.into(),
            events,
            timing: TriggerTiming::After,
            condition: None,
            action: Arc::new(action),
        }
    }

    /// Builds a before-trigger (veto hook) with no condition.
    pub fn before(
        name: impl Into<String>,
        table: impl Into<String>,
        events: Vec<TriggerEvent>,
        action: impl Fn(&TriggerCtx<'_>) -> SydResult<()> + Send + Sync + 'static,
    ) -> Self {
        Trigger {
            name: name.into(),
            table: table.into(),
            events,
            timing: TriggerTiming::Before,
            condition: None,
            action: Arc::new(action),
        }
    }

    /// Builder: adds a firing condition.
    pub fn when(mut self, condition: Predicate) -> Self {
        self.condition = Some(condition);
        self
    }

    /// True iff this trigger applies to `table`/`event` at `timing`.
    pub(crate) fn matches(&self, table: &str, event: TriggerEvent, timing: TriggerTiming) -> bool {
        self.timing == timing && self.table == table && self.events.contains(&event)
    }

    /// Evaluates the firing condition against the appropriate row.
    pub(crate) fn condition_holds(
        &self,
        schema: &Schema,
        event: TriggerEvent,
        old: Option<&[Value]>,
        new: Option<&[Value]>,
    ) -> SydResult<bool> {
        let Some(cond) = &self.condition else {
            return Ok(true);
        };
        let row = match event {
            TriggerEvent::Insert | TriggerEvent::Update => new,
            TriggerEvent::Delete => old,
        };
        match row {
            Some(row) => cond.eval(schema, row),
            None => Ok(false),
        }
    }
}

impl std::fmt::Debug for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trigger")
            .field("name", &self.name)
            .field("table", &self.table)
            .field("events", &self.events)
            .field("timing", &self.timing)
            .field("condition", &self.condition)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new("t", vec![Column::required("n", ColumnType::I64)], &[]).unwrap()
    }

    #[test]
    fn matching_rules() {
        let t = Trigger::after("t1", "slots", vec![TriggerEvent::Insert], |_| Ok(()));
        assert!(t.matches("slots", TriggerEvent::Insert, TriggerTiming::After));
        assert!(!t.matches("slots", TriggerEvent::Delete, TriggerTiming::After));
        assert!(!t.matches("slots", TriggerEvent::Insert, TriggerTiming::Before));
        assert!(!t.matches("other", TriggerEvent::Insert, TriggerTiming::After));
    }

    #[test]
    fn condition_uses_new_row_for_insert_and_old_for_delete() {
        let s = schema();
        let t = Trigger::after(
            "t",
            "t",
            vec![TriggerEvent::Insert, TriggerEvent::Delete],
            |_| Ok(()),
        )
        .when(Predicate::Gt("n".into(), Value::I64(5)));

        let hot = vec![Value::I64(9)];
        let cold = vec![Value::I64(1)];
        assert!(t
            .condition_holds(&s, TriggerEvent::Insert, None, Some(&hot))
            .unwrap());
        assert!(!t
            .condition_holds(&s, TriggerEvent::Insert, None, Some(&cold))
            .unwrap());
        assert!(t
            .condition_holds(&s, TriggerEvent::Delete, Some(&hot), None)
            .unwrap());
        // No applicable row: condition cannot hold.
        assert!(!t
            .condition_holds(&s, TriggerEvent::Delete, None, Some(&hot))
            .unwrap());
    }

    #[test]
    fn unconditioned_trigger_always_fires() {
        let s = schema();
        let t = Trigger::before("t", "t", vec![TriggerEvent::Update], |_| Ok(()));
        assert!(t
            .condition_holds(&s, TriggerEvent::Update, None, None)
            .unwrap());
    }

    #[test]
    fn ctx_cell_accessors() {
        let s = schema();
        let old = vec![Value::I64(1)];
        let new = vec![Value::I64(2)];
        let ctx = TriggerCtx {
            store: None,
            table: "t",
            event: TriggerEvent::Update,
            old: Some(&old),
            new: Some(&new),
            schema: &s,
        };
        assert_eq!(ctx.old_cell("n").unwrap(), &Value::I64(1));
        assert_eq!(ctx.new_cell("n").unwrap(), &Value::I64(2));
        assert!(ctx.new_cell("ghost").is_err());
    }
}
