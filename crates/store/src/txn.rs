//! Explicit transactions: 2PL row locks plus an undo log.
//!
//! A [`Txn`] groups mutations so they can be rolled back together — the
//! local half of the paper's "group transactions across independent data
//! stores" (§1). The distributed half (negotiation across devices) lives in
//! `syd-core::txn`; it composes these local transactions.
//!
//! Locking discipline: each mutating operation first takes logical row
//! locks (by primary key, or by row id for keyless tables) through the
//! store's [`crate::LockManager`], sorted within the operation to avoid
//! same-statement deadlocks; across statements, lock waits are bounded and
//! a timeout aborts the acquiring statement, never the holder. Locks are
//! held until commit or rollback (strict two-phase locking).
//!
//! Rollback applies the undo log in reverse using raw table operations —
//! compensations do **not** re-fire triggers, matching Oracle's rollback
//! behaviour.

use std::time::Duration;

use syd_types::{SydResult, Value};

use crate::lock::LockKey;
use crate::predicate::Predicate;
use crate::store::Store;
use crate::table::{Row, RowChange, RowId};

/// Transaction identity (doubles as the lock owner id).
pub type TxnId = u64;

#[derive(Debug)]
enum Undo {
    Insert {
        table: String,
        row_id: RowId,
    },
    Update {
        table: String,
        row_id: RowId,
        old: Vec<Value>,
    },
    Delete {
        table: String,
        row_id: RowId,
        old: Vec<Value>,
    },
}

/// An open transaction. Dropping an uncommitted transaction rolls it back.
pub struct Txn {
    store: Store,
    id: TxnId,
    undo: Vec<Undo>,
    lock_timeout: Duration,
    finished: bool,
}

impl Txn {
    pub(crate) fn new(store: Store, id: TxnId) -> Txn {
        Txn {
            store,
            id,
            undo: Vec::new(),
            lock_timeout: Duration::from_millis(500),
            finished: false,
        }
    }

    /// This transaction's id (the lock-owner id it uses).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Replaces the bounded lock wait (default 500 ms).
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Txn {
        self.lock_timeout = timeout;
        self
    }

    fn lock_key_for(&self, table: &str, row: &Row) -> SydResult<LockKey> {
        let schema = self.store.schema_of(table)?;
        if schema.has_primary_key() {
            Ok(LockKey::new(table, schema.key_of(&row.values)))
        } else {
            Ok(LockKey::new(
                format!("{table}#rowid"),
                [Value::I64(row.id.0 as i64)],
            ))
        }
    }

    /// Explicitly locks one row by primary key — the `Mark X and Lock X`
    /// step of §4.3, usable before a later update in the same transaction.
    pub fn lock_row(&self, table: &str, key: &[Value]) -> SydResult<()> {
        let lock_key = LockKey::new(table, key.to_vec());
        self.store
            .locks()
            .acquire(self.id, &lock_key, self.lock_timeout)
    }

    /// Inserts a row (locking its primary key first when one exists).
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> SydResult<RowId> {
        let schema = self.store.schema_of(table)?;
        if schema.has_primary_key() {
            let lock_key = LockKey::new(table, schema.key_of(&values));
            self.store
                .locks()
                .acquire(self.id, &lock_key, self.lock_timeout)?;
        }
        let row_id = self.store.insert(table, values)?;
        self.undo.push(Undo::Insert {
            table: table.to_owned(),
            row_id,
        });
        Ok(row_id)
    }

    /// Reads through to the store (read-uncommitted, see crate docs).
    pub fn select(&self, table: &str, pred: &Predicate) -> SydResult<Vec<Row>> {
        self.store.select(table, pred)
    }

    /// Updates matching rows under row locks; returns the affected count.
    pub fn update(
        &mut self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> SydResult<usize> {
        // Lock every matching row first (sorted for same-statement safety),
        // then re-apply the predicate inside the store so rows that changed
        // after the read are re-tested.
        let matching = self.store.select(table, pred)?;
        let mut keys = Vec::with_capacity(matching.len());
        for row in &matching {
            keys.push(self.lock_key_for(table, row)?);
        }
        keys.sort();
        keys.dedup();
        for key in &keys {
            self.store
                .locks()
                .acquire(self.id, key, self.lock_timeout)?;
        }
        let changes = self.store.update_collect(table, pred, assignments)?;
        let n = changes.len();
        for change in changes {
            if let RowChange::Updated(row_id, old, _) = change {
                self.undo.push(Undo::Update {
                    table: table.to_owned(),
                    row_id,
                    old,
                });
            }
        }
        Ok(n)
    }

    /// Deletes matching rows under row locks; returns the affected count.
    pub fn delete(&mut self, table: &str, pred: &Predicate) -> SydResult<usize> {
        let matching = self.store.select(table, pred)?;
        let mut keys = Vec::with_capacity(matching.len());
        for row in &matching {
            keys.push(self.lock_key_for(table, row)?);
        }
        keys.sort();
        keys.dedup();
        for key in &keys {
            self.store
                .locks()
                .acquire(self.id, key, self.lock_timeout)?;
        }
        let changes = self.store.delete_collect(table, pred)?;
        let n = changes.len();
        for change in changes {
            if let RowChange::Deleted(row_id, old) = change {
                self.undo.push(Undo::Delete {
                    table: table.to_owned(),
                    row_id,
                    old,
                });
            }
        }
        Ok(n)
    }

    /// Commits: keeps every change, releases all locks.
    pub fn commit(mut self) {
        self.finished = true;
        self.undo.clear();
        self.store.locks().release_all(self.id);
    }

    /// Rolls back: undoes every change in reverse, releases all locks.
    pub fn rollback(mut self) -> SydResult<()> {
        self.finished = true;
        let result = self.apply_undo();
        self.store.locks().release_all(self.id);
        result
    }

    fn apply_undo(&mut self) -> SydResult<()> {
        while let Some(entry) = self.undo.pop() {
            match entry {
                Undo::Insert { table, row_id } => {
                    let handle = self.store.table_handle(&table)?;
                    let mut t = handle.write();
                    t.remove_by_id(row_id);
                }
                Undo::Update { table, row_id, old } => {
                    let handle = self.store.table_handle(&table)?;
                    let mut t = handle.write();
                    t.set_row(row_id, old);
                }
                Undo::Delete { table, row_id, old } => {
                    let handle = self.store.table_handle(&table)?;
                    let mut t = handle.write();
                    t.restore(row_id, old);
                }
            }
        }
        Ok(())
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.apply_undo();
            self.store.locks().release_all(self.id);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};
    use syd_types::SydError;

    fn store() -> Store {
        let s = Store::new();
        s.create_table(
            Schema::new(
                "slots",
                vec![
                    Column::required("day", ColumnType::I64),
                    Column::required("status", ColumnType::Str),
                ],
                &["day"],
            )
            .unwrap(),
        )
        .unwrap();
        for day in 0..5 {
            s.insert("slots", vec![Value::I64(day), Value::str("free")])
                .unwrap();
        }
        s
    }

    #[test]
    fn commit_keeps_changes_and_releases_locks() {
        let s = store();
        let mut txn = s.begin();
        txn.insert("slots", vec![Value::I64(10), Value::str("free")])
            .unwrap();
        txn.update(
            "slots",
            &Predicate::Eq("day".into(), Value::I64(0)),
            &[("status".into(), Value::str("busy"))],
        )
        .unwrap();
        assert!(s.locks().held_count() > 0);
        txn.commit();
        assert_eq!(s.locks().held_count(), 0);
        assert!(s.get_by_key("slots", &[Value::I64(10)]).unwrap().is_some());
        assert_eq!(
            s.get_by_key("slots", &[Value::I64(0)])
                .unwrap()
                .unwrap()
                .values[1],
            Value::str("busy")
        );
    }

    #[test]
    fn rollback_undoes_everything_in_reverse() {
        let s = store();
        let mut txn = s.begin();
        txn.insert("slots", vec![Value::I64(10), Value::str("free")])
            .unwrap();
        txn.update(
            "slots",
            &Predicate::True,
            &[("status".into(), Value::str("busy"))],
        )
        .unwrap();
        txn.delete("slots", &Predicate::Eq("day".into(), Value::I64(3)))
            .unwrap();
        txn.rollback().unwrap();
        assert_eq!(s.locks().held_count(), 0);
        assert_eq!(s.row_count("slots").unwrap(), 5);
        assert!(s.get_by_key("slots", &[Value::I64(10)]).unwrap().is_none());
        for day in 0..5 {
            let row = s.get_by_key("slots", &[Value::I64(day)]).unwrap().unwrap();
            assert_eq!(row.values[1], Value::str("free"), "day {day}");
        }
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let s = store();
        {
            let mut txn = s.begin();
            txn.delete("slots", &Predicate::True).unwrap();
            assert_eq!(s.row_count("slots").unwrap(), 0);
            // dropped here
        }
        assert_eq!(s.row_count("slots").unwrap(), 5);
        assert_eq!(s.locks().held_count(), 0);
    }

    #[test]
    fn conflicting_txns_time_out_not_deadlock() {
        let s = store();
        let mut t1 = s.begin();
        t1.update(
            "slots",
            &Predicate::Eq("day".into(), Value::I64(1)),
            &[("status".into(), Value::str("t1"))],
        )
        .unwrap();

        let mut t2 = s.begin().with_lock_timeout(Duration::from_millis(50));
        let err = t2
            .update(
                "slots",
                &Predicate::Eq("day".into(), Value::I64(1)),
                &[("status".into(), Value::str("t2"))],
            )
            .unwrap_err();
        assert!(matches!(err, SydError::LockTimeout(_)), "{err}");

        t1.commit();
        // Now t2 can proceed.
        let n = t2
            .update(
                "slots",
                &Predicate::Eq("day".into(), Value::I64(1)),
                &[("status".into(), Value::str("t2"))],
            )
            .unwrap();
        assert_eq!(n, 1);
        t2.commit();
        assert_eq!(
            s.get_by_key("slots", &[Value::I64(1)])
                .unwrap()
                .unwrap()
                .values[1],
            Value::str("t2")
        );
    }

    #[test]
    fn insert_conflict_on_same_pk_blocks_until_rollback() {
        let s = store();
        let mut t1 = s.begin();
        t1.insert("slots", vec![Value::I64(100), Value::str("a")])
            .unwrap();
        let mut t2 = s.begin().with_lock_timeout(Duration::from_millis(40));
        let err = t2
            .insert("slots", vec![Value::I64(100), Value::str("b")])
            .unwrap_err();
        assert!(matches!(err, SydError::LockTimeout(_)), "{err}");
        t1.rollback().unwrap();
        // Key is free again.
        t2.insert("slots", vec![Value::I64(100), Value::str("b")])
            .unwrap();
        t2.commit();
        assert_eq!(
            s.get_by_key("slots", &[Value::I64(100)])
                .unwrap()
                .unwrap()
                .values[1],
            Value::str("b")
        );
    }

    #[test]
    fn explicit_lock_row_marks_a_slot() {
        let s = store();
        let txn = s.begin();
        txn.lock_row("slots", &[Value::I64(2)]).unwrap();
        assert_eq!(
            s.locks().holder(&LockKey::new("slots", [Value::I64(2)])),
            Some(txn.id())
        );
        txn.commit();
        assert_eq!(s.locks().held_count(), 0);
    }

    #[test]
    fn keyless_tables_lock_by_row_id() {
        let s = Store::new();
        s.create_table(
            Schema::new("log", vec![Column::required("n", ColumnType::I64)], &[]).unwrap(),
        )
        .unwrap();
        s.insert("log", vec![Value::I64(1)]).unwrap();
        let mut txn = s.begin();
        txn.update("log", &Predicate::True, &[("n".into(), Value::I64(2))])
            .unwrap();
        assert_eq!(s.locks().held_count(), 1);
        txn.rollback().unwrap();
        assert_eq!(
            s.select("log", &Predicate::True).unwrap()[0].values[0],
            Value::I64(1)
        );
    }

    #[test]
    fn concurrent_disjoint_txns_proceed_in_parallel() {
        let s = store();
        let mut handles = Vec::new();
        for day in 0..5i64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut txn = s.begin();
                txn.update(
                    "slots",
                    &Predicate::Eq("day".into(), Value::I64(day)),
                    &[("status".into(), Value::str("claimed"))],
                )
                .unwrap();
                txn.commit();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            s.count(
                "slots",
                &Predicate::Eq("status".into(), Value::str("claimed"))
            )
            .unwrap(),
            5
        );
    }
}
