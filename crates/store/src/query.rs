//! Fluent query builder: filter / order-by / limit over one table.

use syd_types::{SydResult, Value};

use crate::predicate::Predicate;
use crate::store::Store;
use crate::table::Row;

/// A composable read query. Terminal operations are [`Query::run`],
/// [`Query::first`], [`Query::count`] and [`Query::column`].
#[must_use = "queries do nothing until run"]
pub struct Query {
    store: Store,
    table: String,
    pred: Predicate,
    order_by: Option<(String, bool)>,
    limit: Option<usize>,
}

impl Query {
    pub(crate) fn new(store: Store, table: &str) -> Query {
        Query {
            store,
            table: table.to_owned(),
            pred: Predicate::True,
            order_by: None,
            limit: None,
        }
    }

    /// Adds a conjunct to the filter.
    pub fn filter(mut self, pred: Predicate) -> Query {
        self.pred = match std::mem::replace(&mut self.pred, Predicate::True) {
            Predicate::True => pred,
            existing => existing.and(pred),
        };
        self
    }

    /// Sorts results by `column`, ascending or descending.
    pub fn order_by(mut self, column: &str, ascending: bool) -> Query {
        self.order_by = Some((column.to_owned(), ascending));
        self
    }

    /// Caps the number of returned rows (applied after ordering).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Executes and returns matching rows.
    pub fn run(self) -> SydResult<Vec<Row>> {
        let schema = self.store.schema_of(&self.table)?;
        let mut rows = self.store.select(&self.table, &self.pred)?;
        if let Some((column, ascending)) = &self.order_by {
            let idx = schema.column_index(column)?;
            rows.sort_by(|a, b| {
                let ord = a.values[idx].cmp_total(&b.values[idx]);
                if *ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        Ok(rows)
    }

    /// Executes and returns the first row, if any.
    pub fn first(self) -> SydResult<Option<Row>> {
        Ok(self.limit(1).run()?.into_iter().next())
    }

    /// Executes and counts matches (ignores limit/order).
    pub fn count(self) -> SydResult<usize> {
        self.store.count(&self.table, &self.pred)
    }

    /// Executes and projects a single column.
    pub fn column(self, column: &str) -> SydResult<Vec<Value>> {
        let schema = self.store.schema_of(&self.table)?;
        let idx = schema.column_index(column)?;
        Ok(self
            .run()?
            .into_iter()
            .map(|mut row| row.values.swap_remove(idx))
            .collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn store() -> Store {
        let store = Store::new();
        store
            .create_table(
                Schema::new(
                    "people",
                    vec![
                        Column::required("name", ColumnType::Str),
                        Column::required("age", ColumnType::I64),
                    ],
                    &["name"],
                )
                .unwrap(),
            )
            .unwrap();
        for (name, age) in [("carol", 35), ("alice", 30), ("bob", 25), ("dave", 40)] {
            store
                .insert("people", vec![Value::str(name), Value::I64(age)])
                .unwrap();
        }
        store
    }

    #[test]
    fn filter_and_order() {
        let rows = store()
            .query("people")
            .filter(Predicate::Ge("age".into(), Value::I64(30)))
            .order_by("age", true)
            .run()
            .unwrap();
        let names: Vec<_> = rows.iter().map(|r| r.values[0].clone()).collect();
        assert_eq!(
            names,
            vec![Value::str("alice"), Value::str("carol"), Value::str("dave")]
        );
    }

    #[test]
    fn descending_with_limit() {
        let rows = store()
            .query("people")
            .order_by("age", false)
            .limit(2)
            .run()
            .unwrap();
        assert_eq!(rows[0].values[0], Value::str("dave"));
        assert_eq!(rows[1].values[0], Value::str("carol"));
    }

    #[test]
    fn chained_filters_conjoin() {
        let n = store()
            .query("people")
            .filter(Predicate::Ge("age".into(), Value::I64(30)))
            .filter(Predicate::Lt("age".into(), Value::I64(40)))
            .count()
            .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn first_and_none() {
        let s = store();
        let youngest = s
            .query("people")
            .order_by("age", true)
            .first()
            .unwrap()
            .unwrap();
        assert_eq!(youngest.values[0], Value::str("bob"));
        assert!(s
            .query("people")
            .filter(Predicate::Gt("age".into(), Value::I64(100)))
            .first()
            .unwrap()
            .is_none());
    }

    #[test]
    fn column_projection() {
        let ages = store()
            .query("people")
            .order_by("age", true)
            .column("age")
            .unwrap();
        assert_eq!(
            ages,
            vec![
                Value::I64(25),
                Value::I64(30),
                Value::I64(35),
                Value::I64(40)
            ]
        );
    }

    #[test]
    fn unknown_order_column_errors() {
        assert!(store()
            .query("people")
            .order_by("ghost", true)
            .run()
            .is_err());
    }
}
