//! The store façade: tables behind latches, triggers, locks, transactions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use syd_types::{SydError, SydResult, Value};

use crate::lock::LockManager;
use crate::predicate::Predicate;
use crate::query::Query;
use crate::schema::Schema;
use crate::table::{Row, RowChange, RowId, Table};
use crate::trigger::{Trigger, TriggerCtx, TriggerEvent, TriggerTiming};
use crate::txn::Txn;

pub(crate) struct StoreInner {
    pub(crate) tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    pub(crate) triggers: RwLock<Vec<Trigger>>,
    pub(crate) locks: LockManager,
    pub(crate) next_txn: AtomicU64,
}

/// One device's embedded database. Cloning shares the store.
#[derive(Clone)]
pub struct Store {
    pub(crate) inner: Arc<StoreInner>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("tables", &self.table_names())
            .finish_non_exhaustive()
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Store {
        Store {
            inner: Arc::new(StoreInner {
                tables: RwLock::new(HashMap::new()),
                triggers: RwLock::new(Vec::new()),
                locks: LockManager::new(),
                next_txn: AtomicU64::new(1),
            }),
        }
    }

    // ---- DDL ------------------------------------------------------------

    /// Creates a table from `schema`. Fails if the name is taken.
    pub fn create_table(&self, schema: Schema) -> SydResult<()> {
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(SydError::SchemaViolation(format!(
                "table `{}` already exists",
                schema.name
            )));
        }
        tables.insert(
            schema.name.clone(),
            Arc::new(RwLock::new(Table::new(schema))),
        );
        Ok(())
    }

    /// Drops a table and all its rows.
    pub fn drop_table(&self, name: &str) -> SydResult<()> {
        self.inner
            .tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SydError::NoSuchTable(name.to_owned()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.inner.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// True iff `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(name)
    }

    /// Creates (idempotently) a secondary index on `table.column`.
    pub fn create_index(&self, table: &str, column: &str) -> SydResult<()> {
        let handle = self.table_handle(table)?;
        let mut t = handle.write();
        t.create_index(column)
    }

    /// The schema of a table.
    pub fn schema_of(&self, table: &str) -> SydResult<Schema> {
        let handle = self.table_handle(table)?;
        let t = handle.read();
        Ok(t.schema().clone())
    }

    pub(crate) fn table_handle(&self, name: &str) -> SydResult<Arc<RwLock<Table>>> {
        self.inner
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SydError::NoSuchTable(name.to_owned()))
    }

    // ---- triggers ---------------------------------------------------------

    /// Registers a trigger. Fails on duplicate names.
    pub fn add_trigger(&self, trigger: Trigger) -> SydResult<()> {
        let mut triggers = self.inner.triggers.write();
        if triggers.iter().any(|t| t.name == trigger.name) {
            return Err(SydError::SchemaViolation(format!(
                "trigger `{}` already exists",
                trigger.name
            )));
        }
        triggers.push(trigger);
        Ok(())
    }

    /// Removes a trigger by name (no-op if absent).
    pub fn remove_trigger(&self, name: &str) {
        self.inner.triggers.write().retain(|t| t.name != name);
    }

    /// Names of registered triggers.
    pub fn trigger_names(&self) -> Vec<String> {
        self.inner
            .triggers
            .read()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Runs before-triggers for one prospective row change; any error vetoes.
    fn fire_before(
        &self,
        schema: &Schema,
        table: &str,
        event: TriggerEvent,
        old: Option<&[Value]>,
        new: Option<&[Value]>,
    ) -> SydResult<()> {
        let triggers = self.inner.triggers.read();
        for t in triggers.iter() {
            if t.matches(table, event, TriggerTiming::Before)
                && t.condition_holds(schema, event, old, new)?
            {
                let ctx = TriggerCtx {
                    store: None,
                    table,
                    event,
                    old,
                    new,
                    schema,
                };
                (t.action)(&ctx)?;
            }
        }
        Ok(())
    }

    /// Runs after-triggers for applied changes; called with no latches held.
    /// The first error is returned, but every trigger still runs.
    fn fire_after(&self, schema: &Schema, table: &str, changes: &[RowChange]) -> SydResult<()> {
        let triggers: Vec<Trigger> = {
            let guard = self.inner.triggers.read();
            guard
                .iter()
                .filter(|t| t.timing == TriggerTiming::After && t.table == table)
                .cloned()
                .collect()
        };
        if triggers.is_empty() {
            return Ok(());
        }
        let mut first_err = None;
        for change in changes {
            let (event, old, new): (TriggerEvent, Option<&[Value]>, Option<&[Value]>) = match change
            {
                RowChange::Inserted(_, values) => {
                    (TriggerEvent::Insert, None, Some(values.as_slice()))
                }
                RowChange::Updated(_, old, new) => (
                    TriggerEvent::Update,
                    Some(old.as_slice()),
                    Some(new.as_slice()),
                ),
                RowChange::Deleted(_, values) => {
                    (TriggerEvent::Delete, Some(values.as_slice()), None)
                }
            };
            for t in &triggers {
                if t.events.contains(&event) && t.condition_holds(schema, event, old, new)? {
                    let ctx = TriggerCtx {
                        store: Some(self),
                        table,
                        event,
                        old,
                        new,
                        schema,
                    };
                    if let Err(e) = (t.action)(&ctx) {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    // ---- DML (auto-commit) ------------------------------------------------

    /// Inserts a row; fires insert triggers.
    pub fn insert(&self, table: &str, values: Vec<Value>) -> SydResult<RowId> {
        let handle = self.table_handle(table)?;
        let (row_id, schema, change) = {
            let mut t = handle.write();
            let schema = t.schema().clone();
            schema.validate_row(&values)?;
            self.fire_before(&schema, table, TriggerEvent::Insert, None, Some(&values))?;
            let row_id = t.insert(values.clone())?;
            (row_id, schema, RowChange::Inserted(row_id, values))
        };
        self.fire_after(&schema, table, std::slice::from_ref(&change))?;
        Ok(row_id)
    }

    /// Rows matching `pred`.
    pub fn select(&self, table: &str, pred: &Predicate) -> SydResult<Vec<Row>> {
        let handle = self.table_handle(table)?;
        let t = handle.read();
        t.select(pred)
    }

    /// Number of rows matching `pred`.
    pub fn count(&self, table: &str, pred: &Predicate) -> SydResult<usize> {
        let handle = self.table_handle(table)?;
        let t = handle.read();
        t.count(pred)
    }

    /// Row with the given primary key, if present.
    pub fn get_by_key(&self, table: &str, key: &[Value]) -> SydResult<Option<Row>> {
        let handle = self.table_handle(table)?;
        let t = handle.read();
        Ok(t.get_by_key(key))
    }

    /// Row by id, if present.
    pub fn get(&self, table: &str, row_id: RowId) -> SydResult<Option<Row>> {
        let handle = self.table_handle(table)?;
        let t = handle.read();
        Ok(t.get(row_id))
    }

    /// Starts a fluent query on `table`.
    pub fn query(&self, table: &str) -> Query {
        Query::new(self.clone(), table)
    }

    /// Updates matching rows; fires update triggers; returns affected count.
    pub fn update(
        &self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> SydResult<usize> {
        Ok(self.update_collect(table, pred, assignments)?.len())
    }

    /// Like [`Store::update`] but returns the row changes (transaction undo).
    pub(crate) fn update_collect(
        &self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> SydResult<Vec<RowChange>> {
        let handle = self.table_handle(table)?;
        let (schema, changes) = {
            let mut t = handle.write();
            let schema = t.schema().clone();
            // Before-trigger veto: evaluate prospective new rows first.
            let matching = t.select(pred)?;
            for row in &matching {
                let mut new = row.values.clone();
                for (col, value) in assignments {
                    new[schema.column_index(col)?] = value.clone();
                }
                self.fire_before(
                    &schema,
                    table,
                    TriggerEvent::Update,
                    Some(&row.values),
                    Some(&new),
                )?;
            }
            let changes = t.update(pred, assignments)?;
            (schema, changes)
        };
        self.fire_after(&schema, table, &changes)?;
        Ok(changes)
    }

    /// Deletes matching rows; fires delete triggers; returns affected count.
    pub fn delete(&self, table: &str, pred: &Predicate) -> SydResult<usize> {
        Ok(self.delete_collect(table, pred)?.len())
    }

    /// Like [`Store::delete`] but returns the row changes (transaction undo).
    pub(crate) fn delete_collect(
        &self,
        table: &str,
        pred: &Predicate,
    ) -> SydResult<Vec<RowChange>> {
        let handle = self.table_handle(table)?;
        let (schema, changes) = {
            let mut t = handle.write();
            let schema = t.schema().clone();
            let matching = t.select(pred)?;
            for row in &matching {
                self.fire_before(
                    &schema,
                    table,
                    TriggerEvent::Delete,
                    Some(&row.values),
                    None,
                )?;
            }
            let changes = t.delete(pred)?;
            (schema, changes)
        };
        self.fire_after(&schema, table, &changes)?;
        Ok(changes)
    }

    // ---- locks & transactions ----------------------------------------------

    /// The store's logical lock manager (shared with the kernel's
    /// negotiation protocol).
    pub fn locks(&self) -> &LockManager {
        &self.inner.locks
    }

    /// Begins an explicit transaction.
    pub fn begin(&self) -> Txn {
        let id = self.inner.next_txn.fetch_add(1, Ordering::Relaxed);
        Txn::new(self.clone(), id)
    }

    /// Total rows in a table (diagnostics).
    pub fn row_count(&self, table: &str) -> SydResult<usize> {
        let handle = self.table_handle(table)?;
        let t = handle.read();
        Ok(t.len())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};
    use std::sync::atomic::AtomicU32;

    fn store_with_slots() -> Store {
        let store = Store::new();
        store
            .create_table(
                Schema::new(
                    "slots",
                    vec![
                        Column::required("day", ColumnType::I64),
                        Column::required("status", ColumnType::Str),
                    ],
                    &["day"],
                )
                .unwrap(),
            )
            .unwrap();
        store
    }

    #[test]
    fn ddl_lifecycle() {
        let store = store_with_slots();
        assert!(store.has_table("slots"));
        assert_eq!(store.table_names(), vec!["slots"]);
        assert!(store
            .create_table(Schema::new("slots", vec![], &[]).unwrap())
            .is_err());
        store.drop_table("slots").unwrap();
        assert!(!store.has_table("slots"));
        assert!(store.drop_table("slots").is_err());
    }

    #[test]
    fn crud_round_trip() {
        let store = store_with_slots();
        store
            .insert("slots", vec![Value::I64(1), Value::str("free")])
            .unwrap();
        store
            .insert("slots", vec![Value::I64(2), Value::str("free")])
            .unwrap();
        assert_eq!(store.row_count("slots").unwrap(), 2);
        let n = store
            .update(
                "slots",
                &Predicate::Eq("day".into(), Value::I64(1)),
                &[("status".into(), Value::str("busy"))],
            )
            .unwrap();
        assert_eq!(n, 1);
        let row = store
            .get_by_key("slots", &[Value::I64(1)])
            .unwrap()
            .unwrap();
        assert_eq!(row.values[1], Value::str("busy"));
        let n = store
            .delete("slots", &Predicate::Eq("day".into(), Value::I64(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(store.row_count("slots").unwrap(), 1);
    }

    #[test]
    fn unknown_table_errors() {
        let store = Store::new();
        assert!(matches!(
            store.select("ghost", &Predicate::True).unwrap_err(),
            SydError::NoSuchTable(_)
        ));
    }

    #[test]
    fn after_trigger_observes_changes() {
        let store = store_with_slots();
        let fired = Arc::new(AtomicU32::new(0));
        let fired_clone = Arc::clone(&fired);
        store
            .add_trigger(Trigger::after(
                "count_inserts",
                "slots",
                vec![TriggerEvent::Insert],
                move |ctx| {
                    assert_eq!(ctx.event, TriggerEvent::Insert);
                    assert!(ctx.store.is_some());
                    assert!(ctx.new.is_some());
                    fired_clone.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                },
            ))
            .unwrap();
        store
            .insert("slots", vec![Value::I64(1), Value::str("free")])
            .unwrap();
        store
            .insert("slots", vec![Value::I64(2), Value::str("free")])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn after_trigger_may_reenter_same_table() {
        let store = store_with_slots();
        // Inserting day d < 100 auto-inserts a shadow row at day d+100.
        store
            .add_trigger(Trigger::after(
                "shadow",
                "slots",
                vec![TriggerEvent::Insert],
                |ctx| {
                    let day = ctx.new_cell("day")?.as_i64()?;
                    if day < 100 {
                        ctx.store
                            .unwrap()
                            .insert("slots", vec![Value::I64(day + 100), Value::str("shadow")])?;
                    }
                    Ok(())
                },
            ))
            .unwrap();
        store
            .insert("slots", vec![Value::I64(1), Value::str("free")])
            .unwrap();
        assert!(store
            .get_by_key("slots", &[Value::I64(101)])
            .unwrap()
            .is_some());
    }

    #[test]
    fn before_trigger_vetoes_mutation() {
        let store = store_with_slots();
        store
            .add_trigger(Trigger::before(
                "no_day_13",
                "slots",
                vec![TriggerEvent::Insert],
                |ctx| {
                    if ctx.new_cell("day")?.as_i64()? == 13 {
                        return Err(SydError::App("day 13 is forbidden".into()));
                    }
                    Ok(())
                },
            ))
            .unwrap();
        store
            .insert("slots", vec![Value::I64(1), Value::str("free")])
            .unwrap();
        let err = store
            .insert("slots", vec![Value::I64(13), Value::str("free")])
            .unwrap_err();
        assert!(err.to_string().contains("forbidden"), "{err}");
        // Nothing applied.
        assert_eq!(store.row_count("slots").unwrap(), 1);
    }

    #[test]
    fn before_trigger_vetoes_update_leaving_rows_unchanged() {
        let store = store_with_slots();
        store
            .insert("slots", vec![Value::I64(1), Value::str("reserved")])
            .unwrap();
        store
            .add_trigger(Trigger::before(
                "protect",
                "slots",
                vec![TriggerEvent::Update],
                |ctx| {
                    if ctx.old_cell("status")?.as_str()? == "reserved" {
                        return Err(SydError::App("reserved slots are immutable".into()));
                    }
                    Ok(())
                },
            ))
            .unwrap();
        assert!(store
            .update(
                "slots",
                &Predicate::True,
                &[("status".into(), Value::str("free"))],
            )
            .is_err());
        let row = store
            .get_by_key("slots", &[Value::I64(1)])
            .unwrap()
            .unwrap();
        assert_eq!(row.values[1], Value::str("reserved"));
    }

    #[test]
    fn conditioned_trigger_fires_selectively() {
        let store = store_with_slots();
        let fired = Arc::new(AtomicU32::new(0));
        let fired_clone = Arc::clone(&fired);
        store
            .add_trigger(
                Trigger::after("hot", "slots", vec![TriggerEvent::Insert], move |_| {
                    fired_clone.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .when(Predicate::Gt("day".into(), Value::I64(5))),
            )
            .unwrap();
        store
            .insert("slots", vec![Value::I64(1), Value::str("x")])
            .unwrap();
        store
            .insert("slots", vec![Value::I64(9), Value::str("x")])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_trigger_name_rejected_and_removal_works() {
        let store = store_with_slots();
        store
            .add_trigger(Trigger::after(
                "t",
                "slots",
                vec![TriggerEvent::Insert],
                |_| Ok(()),
            ))
            .unwrap();
        assert!(store
            .add_trigger(Trigger::after(
                "t",
                "slots",
                vec![TriggerEvent::Insert],
                |_| Ok(())
            ))
            .is_err());
        assert_eq!(store.trigger_names(), vec!["t"]);
        store.remove_trigger("t");
        assert!(store.trigger_names().is_empty());
    }

    #[test]
    fn after_trigger_error_propagates_but_mutation_stands() {
        let store = store_with_slots();
        store
            .add_trigger(Trigger::after(
                "grumpy",
                "slots",
                vec![TriggerEvent::Insert],
                |_| Err(SydError::App("observer failed".into())),
            ))
            .unwrap();
        let err = store
            .insert("slots", vec![Value::I64(1), Value::str("x")])
            .unwrap_err();
        assert!(err.to_string().contains("observer failed"));
        // Oracle post-statement semantics: the row is in.
        assert_eq!(store.row_count("slots").unwrap(), 1);
    }

    #[test]
    fn concurrent_inserts_are_serialized() {
        let store = Store::new();
        store
            .create_table(
                Schema::new("log", vec![Column::required("n", ColumnType::I64)], &[]).unwrap(),
            )
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..8i64 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.insert("log", vec![Value::I64(t * 1000 + i)]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.row_count("log").unwrap(), 800);
    }
}
