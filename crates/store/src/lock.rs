//! Logical row locks with bounded waits.
//!
//! §4.3 writes every negotiation in terms of `Mark X for change and Lock X`.
//! These are *logical* entity locks — held across multiple statements and
//! multiple network round-trips — not the store's internal latches. A
//! participant that cannot obtain a lock within the bounded wait votes
//! **no** and the coordinator aborts, so distributed negotiations time out
//! instead of deadlocking (deadlock avoidance by timeout, the same policy
//! the prototype inherited from Oracle's lock waits).
//!
//! Locks are keyed by `(table, key-values)` and owned by an opaque `u64`
//! (a transaction id or a negotiation session id). Acquisition is
//! re-entrant for the same owner.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use syd_types::{SydError, SydResult, Value};

use crate::key::OrdValue;

/// Identifies a lockable entity: a row (or slot) of a table.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct LockKey {
    /// Table name.
    pub table: String,
    /// Key values (usually the primary key).
    pub key: Vec<OrdValue>,
}

impl LockKey {
    /// Builds a lock key from a table name and key values.
    pub fn new(table: impl Into<String>, key: impl IntoIterator<Item = Value>) -> Self {
        LockKey {
            table: table.into(),
            key: key.into_iter().map(OrdValue).collect(),
        }
    }
}

impl std::fmt::Display for LockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[", self.table)?;
        for (i, k) in self.key.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}", k.value())?;
        }
        f.write_str("]")
    }
}

#[derive(Debug)]
struct LockEntry {
    owner: u64,
    depth: u32,
}

/// Exclusive, re-entrant entity locks with bounded waits.
#[derive(Default)]
pub struct LockManager {
    state: Mutex<BTreeMap<LockKey, LockEntry>>,
    released: Condvar,
}

impl LockManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to take `key` for `owner` without waiting.
    pub fn try_acquire(&self, owner: u64, key: &LockKey) -> bool {
        let mut state = self.state.lock();
        match state.get_mut(key) {
            None => {
                state.insert(key.clone(), LockEntry { owner, depth: 1 });
                true
            }
            Some(entry) if entry.owner == owner => {
                entry.depth += 1;
                true
            }
            Some(_) => false,
        }
    }

    /// Takes `key` for `owner`, waiting up to `timeout` for the current
    /// holder to release. Fails with [`SydError::LockTimeout`].
    pub fn acquire(&self, owner: u64, key: &LockKey, timeout: Duration) -> SydResult<()> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            match state.get_mut(key) {
                None => {
                    state.insert(key.clone(), LockEntry { owner, depth: 1 });
                    return Ok(());
                }
                Some(entry) if entry.owner == owner => {
                    entry.depth += 1;
                    return Ok(());
                }
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SydError::LockTimeout(key.to_string()));
                    }
                    if self
                        .released
                        .wait_for(&mut state, deadline - now)
                        .timed_out()
                    {
                        // Re-check once after the timed-out wait: the lock
                        // may have been released exactly at the deadline.
                        if let Some(entry) = state.get_mut(key) {
                            if entry.owner != owner {
                                return Err(SydError::LockTimeout(key.to_string()));
                            }
                            entry.depth += 1;
                            return Ok(());
                        }
                        state.insert(key.clone(), LockEntry { owner, depth: 1 });
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Releases one hold on `key` by `owner`. A re-entrant lock fully
    /// releases only when every acquisition is matched.
    pub fn release(&self, owner: u64, key: &LockKey) {
        let mut state = self.state.lock();
        if let Some(entry) = state.get_mut(key) {
            if entry.owner != owner {
                return; // not ours — ignore, as double releases are harmless
            }
            entry.depth -= 1;
            if entry.depth == 0 {
                state.remove(key);
                drop(state);
                self.released.notify_all();
            }
        }
    }

    /// Releases everything held by `owner` (transaction end / negotiation
    /// abort).
    pub fn release_all(&self, owner: u64) {
        let mut state = self.state.lock();
        let before = state.len();
        state.retain(|_, entry| entry.owner != owner);
        let released = before != state.len();
        drop(state);
        if released {
            self.released.notify_all();
        }
    }

    /// The owner currently holding `key`, if any.
    pub fn holder(&self, key: &LockKey) -> Option<u64> {
        self.state.lock().get(key).map(|e| e.owner)
    }

    /// Number of currently held locks.
    pub fn held_count(&self) -> usize {
        self.state.lock().len()
    }

    /// Snapshot of every held lock as `(owner, key)` pairs, ordered by
    /// key. Used by the invariant checker's lock-leak detector and the
    /// stale-session sweep.
    pub fn held(&self) -> Vec<(u64, LockKey)> {
        self.state
            .lock()
            .iter()
            .map(|(key, entry)| (entry.owner, key.clone()))
            .collect()
    }

    /// Number of locks currently held by `owner`.
    pub fn held_by(&self, owner: u64) -> usize {
        self.state
            .lock()
            .values()
            .filter(|e| e.owner == owner)
            .count()
    }

    /// The keys currently held by `owner`, ordered.
    pub fn keys_held_by(&self, owner: u64) -> Vec<LockKey> {
        self.state
            .lock()
            .iter()
            .filter(|(_, e)| e.owner == owner)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: i64) -> LockKey {
        LockKey::new("slots", [Value::I64(n)])
    }

    #[test]
    fn exclusive_between_owners() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, &key(5)));
        assert!(!lm.try_acquire(2, &key(5)));
        assert_eq!(lm.holder(&key(5)), Some(1));
        lm.release(1, &key(5));
        assert!(lm.try_acquire(2, &key(5)));
    }

    #[test]
    fn reentrant_for_same_owner() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, &key(5)));
        assert!(lm.try_acquire(1, &key(5)));
        lm.release(1, &key(5));
        // Still held: one release left.
        assert!(!lm.try_acquire(2, &key(5)));
        lm.release(1, &key(5));
        assert!(lm.try_acquire(2, &key(5)));
    }

    #[test]
    fn acquire_times_out() {
        let lm = LockManager::new();
        lm.try_acquire(1, &key(7));
        let err = lm
            .acquire(2, &key(7), Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, SydError::LockTimeout(_)), "{err}");
        assert!(err.to_string().contains("slots"), "{err}");
    }

    #[test]
    fn acquire_succeeds_when_released_concurrently() {
        let lm = Arc::new(LockManager::new());
        lm.try_acquire(1, &key(9));
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || lm2.acquire(2, &key(9), Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(30));
        lm.release(1, &key(9));
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.holder(&key(9)), Some(2));
    }

    #[test]
    fn release_all_frees_every_lock() {
        let lm = LockManager::new();
        for n in 0..10 {
            lm.try_acquire(1, &key(n));
        }
        lm.try_acquire(2, &key(100));
        assert_eq!(lm.held_count(), 11);
        lm.release_all(1);
        assert_eq!(lm.held_count(), 1);
        assert_eq!(lm.holder(&key(100)), Some(2));
    }

    #[test]
    fn release_by_non_owner_is_ignored() {
        let lm = LockManager::new();
        lm.try_acquire(1, &key(3));
        lm.release(2, &key(3));
        assert_eq!(lm.holder(&key(3)), Some(1));
    }

    #[test]
    fn distinct_keys_do_not_conflict() {
        let lm = LockManager::new();
        assert!(lm.try_acquire(1, &key(1)));
        assert!(lm.try_acquire(2, &key(2)));
        assert!(lm.try_acquire(3, &LockKey::new("other", [Value::I64(1)])));
    }

    #[test]
    fn contended_acquire_stress() {
        // 8 threads × 50 increments behind one lock: no lost updates.
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for owner in 0..8u64 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    lm.acquire(owner + 1, &key(0), Duration::from_secs(5))
                        .unwrap();
                    let mut c = counter.lock();
                    *c += 1;
                    drop(c);
                    lm.release(owner + 1, &key(0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn held_snapshot_and_per_owner_views() {
        let lm = LockManager::new();
        lm.try_acquire(1, &key(1));
        lm.try_acquire(1, &key(2));
        lm.try_acquire(2, &key(3));
        assert_eq!(lm.held_by(1), 2);
        assert_eq!(lm.held_by(9), 0);
        assert_eq!(lm.keys_held_by(1), vec![key(1), key(2)]);
        let held = lm.held();
        assert_eq!(held.len(), 3);
        assert!(held.contains(&(2, key(3))));
        lm.release_all(1);
        assert!(lm.keys_held_by(1).is_empty());
        assert_eq!(lm.held_by(2), 1);
    }

    #[test]
    fn display_formats_key() {
        let k = LockKey::new("slots", [Value::I64(3), Value::str("x")]);
        assert_eq!(k.to_string(), "slots[3, \"x\"]");
    }
}
