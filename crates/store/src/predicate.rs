//! Row predicates — the `WHERE` clause of the embedded store.
//!
//! Predicates are built once (resolving column names against the schema is
//! done at evaluation time and cached per query execution by the table
//! layer) and evaluated per row with no allocation.

use syd_types::{SydResult, Value};

use crate::schema::Schema;

/// A boolean expression over one row.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// Always true (full scan).
    True,
    /// `column = value` (total-order equality, so `I64(2) = F64(2.0)`).
    Eq(String, Value),
    /// `column != value`.
    Ne(String, Value),
    /// `column < value`.
    Lt(String, Value),
    /// `column <= value`.
    Le(String, Value),
    /// `column > value`.
    Gt(String, Value),
    /// `column >= value`.
    Ge(String, Value),
    /// `low <= column <= high` (inclusive both ends).
    Between(String, Value, Value),
    /// `column IN (values…)`.
    In(String, Vec<Value>),
    /// `column IS NULL`.
    IsNull(String),
    /// Conjunction; empty = true.
    And(Vec<Predicate>),
    /// Disjunction; empty = false.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `a AND b`.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::And(mut xs), Predicate::And(ys)) => {
                xs.extend(ys);
                Predicate::And(xs)
            }
            (Predicate::And(mut xs), y) => {
                xs.push(y);
                Predicate::And(xs)
            }
            (x, Predicate::And(mut ys)) => {
                ys.insert(0, x);
                Predicate::And(ys)
            }
            (x, y) => Predicate::And(vec![x, y]),
        }
    }

    /// Convenience: `a OR b`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(vec![self, other])
    }

    /// Evaluates against a row laid out per `schema`.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> SydResult<bool> {
        use core::cmp::Ordering::*;
        let cell = |name: &str| -> SydResult<&Value> { Ok(&row[schema.column_index(name)?]) };
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(v) == Equal
            }
            Predicate::Ne(c, v) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(v) != Equal
            }
            Predicate::Lt(c, v) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(v) == Less
            }
            Predicate::Le(c, v) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(v) != Greater
            }
            Predicate::Gt(c, v) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(v) == Greater
            }
            Predicate::Ge(c, v) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(v) != Less
            }
            Predicate::Between(c, lo, hi) => {
                let cv = cell(c)?;
                !cv.is_null() && cv.cmp_total(lo) != Less && cv.cmp_total(hi) != Greater
            }
            Predicate::In(c, values) => {
                let cv = cell(c)?;
                !cv.is_null() && values.iter().any(|v| cv.cmp_total(v) == Equal)
            }
            Predicate::IsNull(c) => cell(c)?.is_null(),
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(schema, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(schema, row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(schema, row)?,
        })
    }

    /// If the predicate is (or contains, at the top of a conjunction) an
    /// equality or range constraint on `column`, returns the bounds
    /// `(low, high)` (inclusive) it implies — the planner's index-eligibility
    /// test. `None` bound = unbounded on that side.
    pub fn bounds_for(&self, column: &str) -> Option<(Option<&Value>, Option<&Value>)> {
        match self {
            Predicate::Eq(c, v) if c == column => Some((Some(v), Some(v))),
            Predicate::Between(c, lo, hi) if c == column => Some((Some(lo), Some(hi))),
            Predicate::Lt(c, v) | Predicate::Le(c, v) if c == column => Some((None, Some(v))),
            Predicate::Gt(c, v) | Predicate::Ge(c, v) if c == column => Some((Some(v), None)),
            Predicate::And(ps) => ps.iter().find_map(|p| p.bounds_for(column)),
            _ => None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                Column::required("n", ColumnType::I64),
                Column::required("s", ColumnType::Str),
                Column::nullable("opt", ColumnType::I64),
            ],
            &[],
        )
        .unwrap()
    }

    fn row(n: i64, s: &str, opt: Option<i64>) -> Vec<Value> {
        vec![
            Value::I64(n),
            Value::str(s),
            opt.map_or(Value::Null, Value::I64),
        ]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row(5, "abc", None);
        assert!(Predicate::Eq("n".into(), Value::I64(5))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::Ne("n".into(), Value::I64(4))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::Lt("n".into(), Value::I64(6))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::Le("n".into(), Value::I64(5))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::Gt("n".into(), Value::I64(4))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::Ge("n".into(), Value::I64(5))
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::Gt("n".into(), Value::I64(5))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::Eq("s".into(), Value::str("abc"))
            .eval(&s, &r)
            .unwrap());
    }

    #[test]
    fn between_is_inclusive() {
        let s = schema();
        for (n, expected) in [(1, false), (2, true), (3, true), (4, true), (5, false)] {
            let p = Predicate::Between("n".into(), Value::I64(2), Value::I64(4));
            assert_eq!(p.eval(&s, &row(n, "", None)).unwrap(), expected, "n={n}");
        }
    }

    #[test]
    fn in_list() {
        let s = schema();
        let p = Predicate::In("n".into(), vec![Value::I64(1), Value::I64(3)]);
        assert!(p.eval(&s, &row(3, "", None)).unwrap());
        assert!(!p.eval(&s, &row(2, "", None)).unwrap());
    }

    #[test]
    fn null_semantics_match_sql() {
        let s = schema();
        let r = row(1, "x", None);
        // NULL compares false with everything except IS NULL.
        assert!(!Predicate::Eq("opt".into(), Value::I64(1))
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::Ne("opt".into(), Value::I64(1))
            .eval(&s, &r)
            .unwrap());
        assert!(!Predicate::Lt("opt".into(), Value::I64(1))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::IsNull("opt".into()).eval(&s, &r).unwrap());
        let some = row(1, "x", Some(7));
        assert!(!Predicate::IsNull("opt".into()).eval(&s, &some).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row(5, "abc", Some(1));
        let p = Predicate::Eq("n".into(), Value::I64(5))
            .and(Predicate::Eq("s".into(), Value::str("abc")));
        assert!(p.eval(&s, &r).unwrap());
        let q = Predicate::Eq("n".into(), Value::I64(0))
            .or(Predicate::Eq("s".into(), Value::str("abc")));
        assert!(q.eval(&s, &r).unwrap());
        assert!(!Predicate::Not(Box::new(Predicate::True))
            .eval(&s, &r)
            .unwrap());
        assert!(Predicate::And(vec![]).eval(&s, &r).unwrap());
        assert!(!Predicate::Or(vec![]).eval(&s, &r).unwrap());
    }

    #[test]
    fn and_flattens() {
        let p = Predicate::True.and(Predicate::True).and(Predicate::True);
        match p {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn unknown_column_is_an_error() {
        let s = schema();
        let err = Predicate::Eq("ghost".into(), Value::I64(1))
            .eval(&s, &row(1, "", None))
            .unwrap_err();
        assert!(matches!(err, syd_types::SydError::NoSuchColumn(_)));
    }

    #[test]
    fn bounds_extraction_for_planner() {
        let eq = Predicate::Eq("n".into(), Value::I64(5));
        assert_eq!(
            eq.bounds_for("n"),
            Some((Some(&Value::I64(5)), Some(&Value::I64(5))))
        );
        assert_eq!(eq.bounds_for("s"), None);

        let between = Predicate::Between("n".into(), Value::I64(1), Value::I64(9));
        assert_eq!(
            between.bounds_for("n"),
            Some((Some(&Value::I64(1)), Some(&Value::I64(9))))
        );

        let conj = Predicate::Eq("s".into(), Value::str("x"))
            .and(Predicate::Ge("n".into(), Value::I64(3)));
        assert_eq!(conj.bounds_for("n"), Some((Some(&Value::I64(3)), None)));

        // OR can't use the index.
        let disj = Predicate::Eq("n".into(), Value::I64(1)).or(Predicate::True);
        assert_eq!(disj.bounds_for("n"), None);
    }

    #[test]
    fn cross_type_numeric_equality() {
        let s = schema();
        let p = Predicate::Eq("n".into(), Value::F64(5.0));
        assert!(p.eval(&s, &row(5, "", None)).unwrap());
    }
}
