//! Embedded per-device relational store — the Oracle 8i stand-in.
//!
//! Every SyD device in the paper embeds its own database: "Each user has a
//! database embedded in his/her device" (§5.1), with Oracle triggers and
//! Java stored procedures providing the event-based update path (§5.3).
//! This crate provides the equivalent substrate:
//!
//! * typed [`Schema`]s with optional primary keys and secondary indexes,
//! * a [`Predicate`] language and a small [`Query`] builder (filter /
//!   order-by / limit) standing in for the prototype's SQL,
//! * **row-level locks** with bounded waits — the `Mark X and Lock X`
//!   primitive that §4.3's negotiation semantics are written in,
//! * explicit [`Txn`] transactions with undo logs (commit/rollback),
//! * an **ECA trigger engine** ([`Trigger`]): `before` triggers may veto a
//!   mutation, `after` triggers observe it — the same event-condition-action
//!   shape as the paper's Oracle trigger + Java stored procedure route, and
//! * binary snapshots through the `syd-wire` codec for device persistence.
//!
//! Like the prototype, the store is **local** to one device; cross-device
//! coordination belongs to the SyD kernel above (`syd-core`), which builds
//! the link tables (`SyD_Link`, `SyD_WaitingLink`, `SyD_LinkMethod`, §4.2)
//! on this engine.
//!
//! Isolation: single statements are atomic and serialized per table;
//! transactions take exclusive row locks (2PL) and undo on rollback.
//! Readers do not block and may observe uncommitted writes ("read
//! uncommitted") — faithful to the prototype, whose coordination relied on
//! explicit mark/status columns rather than SQL isolation, which is exactly
//! how `syd-core` uses this store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flatfile;
pub mod key;
pub mod lock;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod snapshot;
pub mod store;
pub mod table;
pub mod trigger;
pub mod txn;

pub use flatfile::{export_table, import_table};
pub use key::OrdValue;
pub use lock::{LockKey, LockManager};
pub use predicate::Predicate;
pub use query::Query;
pub use schema::{Column, ColumnType, Schema};
pub use store::Store;
pub use table::{Row, RowId};
pub use trigger::{Trigger, TriggerCtx, TriggerEvent, TriggerTiming};
pub use txn::{Txn, TxnId};
