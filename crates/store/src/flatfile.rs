//! Flat-file device objects (§2 heterogeneity).
//!
//! "Each individual device in SyD may be a traditional database … or may
//! be an ad-hoc data store such as a flat file, an EXCEL worksheet or a
//! list repository." This module adapts such ad-hoc stores into [`Store`]
//! tables: a delimited text snapshot (CSV-style) can be imported as a
//! table and any table exported back, so a device whose "database" is a
//! text file participates in SyD like any other.
//!
//! Format: first line is the header (`name:type[?]` per column, `?` marks
//! nullable), subsequent lines are rows. Fields are separated by `,` and
//! escaped minimally (`\,`, `\\`, `\n` as two characters). Only scalar
//! column types round-trip (`bool`, `i64`, `f64`, `str`); that is exactly
//! the shape of the paper's "ordered stores of data, be they formal
//! databases or ASCII lists".

use syd_types::{SydError, SydResult, Value};

use crate::predicate::Predicate;
use crate::schema::{Column, ColumnType, Schema};
use crate::store::Store;

fn type_code(ty: ColumnType) -> SydResult<&'static str> {
    Ok(match ty {
        ColumnType::Bool => "bool",
        ColumnType::I64 => "i64",
        ColumnType::F64 => "f64",
        ColumnType::Str => "str",
        other => {
            return Err(SydError::App(format!(
                "column type {other:?} does not round-trip through a flat file"
            )))
        }
    })
}

fn parse_type(code: &str) -> SydResult<ColumnType> {
    Ok(match code {
        "bool" => ColumnType::Bool,
        "i64" => ColumnType::I64,
        "f64" => ColumnType::F64,
        "str" => ColumnType::Str,
        other => return Err(SydError::App(format!("unknown flat-file type `{other}`"))),
    })
}

fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ',' => out.push_str("\\,"),
            '\n' => out.push_str("\\n"),
            // A literal ␀ must not collide with the null marker.
            '␀' => out.push_str("\\␀"),
            c => out.push(c),
        }
    }
    out
}

/// Splits on unescaped commas, keeping escape sequences intact — the
/// null check must see the raw field before unescaping.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                current.push('\\');
                if let Some(escaped) = chars.next() {
                    current.push(escaped);
                }
            }
            ',' => fields.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some(escaped) => out.push(escaped),
                None => out.push('\\'),
            },
            c => out.push(c),
        }
    }
    out
}

fn cell_to_field(value: &Value) -> SydResult<String> {
    Ok(match value {
        Value::Null => "␀".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => {
            // Round-trippable float formatting.
            format!("{x:?}")
        }
        Value::Str(s) => escape(s),
        other => {
            return Err(SydError::App(format!(
                "cell {other} does not round-trip through a flat file"
            )))
        }
    })
}

fn field_to_cell(raw: &str, column: &Column) -> SydResult<Value> {
    // Null check on the *raw* field: an escaped literal ␀ arrives as \␀.
    if raw == "␀" {
        return Ok(Value::Null);
    }
    let field = &unescape(raw);
    Ok(match column.ty {
        ColumnType::Bool => Value::Bool(
            field
                .parse()
                .map_err(|_| SydError::App(format!("`{field}` is not a bool")))?,
        ),
        ColumnType::I64 => Value::I64(
            field
                .parse()
                .map_err(|_| SydError::App(format!("`{field}` is not an i64")))?,
        ),
        ColumnType::F64 => Value::F64(
            field
                .parse()
                .map_err(|_| SydError::App(format!("`{field}` is not an f64")))?,
        ),
        ColumnType::Str => Value::Str(field.to_owned()),
        _ => unreachable!("parse_type admits scalars only"),
    })
}

/// Exports one table as delimited text (header + rows, sorted by row id).
pub fn export_table(store: &Store, table: &str) -> SydResult<String> {
    let schema = store.schema_of(table)?;
    let mut out = String::new();
    for (i, col) in schema.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(&col.name));
        out.push(':');
        out.push_str(type_code(col.ty)?);
        if col.nullable {
            out.push('?');
        }
    }
    out.push('\n');
    for row in store.select(table, &Predicate::True)? {
        for (i, cell) in row.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&cell_to_field(cell)?);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Imports delimited text as a new table named `table` (keyed on its first
/// column when `keyed` is set).
pub fn import_table(store: &Store, table: &str, text: &str, keyed: bool) -> SydResult<usize> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| SydError::App("flat file is empty".into()))?;
    let mut columns = Vec::new();
    for field in split_line(header).iter().map(|f| unescape(f)) {
        let (name, ty) = field
            .rsplit_once(':')
            .ok_or_else(|| SydError::App(format!("bad header field `{field}`")))?;
        let (ty, nullable) = match ty.strip_suffix('?') {
            Some(t) => (t, true),
            None => (ty, false),
        };
        columns.push(Column {
            name: name.to_owned(),
            ty: parse_type(ty)?,
            nullable,
        });
    }
    let key: Vec<&str> = if keyed {
        vec![columns[0].name.as_str()]
    } else {
        vec![]
    };
    let key_refs: Vec<&str> = key.clone();
    let schema = Schema::new(table, columns.clone(), &key_refs)?;
    store.create_table(schema)?;

    let mut imported = 0;
    for (line_no, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split_line(line);
        if fields.len() != columns.len() {
            return Err(SydError::App(format!(
                "line {}: {} fields, expected {}",
                line_no + 2,
                fields.len(),
                columns.len()
            )));
        }
        let row: Vec<Value> = fields
            .iter()
            .zip(&columns)
            .map(|(f, c)| field_to_cell(f, c))
            .collect::<SydResult<_>>()?;
        store.insert(table, row)?;
        imported += 1;
    }
    Ok(imported)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn sample() -> Store {
        let store = Store::new();
        store
            .create_table(
                Schema::new(
                    "inventory",
                    vec![
                        Column::required("sku", ColumnType::I64),
                        Column::required("name", ColumnType::Str),
                        Column::required("price", ColumnType::F64),
                        Column::nullable("note", ColumnType::Str),
                        Column::required("in_stock", ColumnType::Bool),
                    ],
                    &["sku"],
                )
                .unwrap(),
            )
            .unwrap();
        store
            .insert(
                "inventory",
                vec![
                    Value::I64(1),
                    Value::str("toaster, deluxe"),
                    Value::F64(18.99),
                    Value::Null,
                    Value::Bool(true),
                ],
            )
            .unwrap();
        store
            .insert(
                "inventory",
                vec![
                    Value::I64(2),
                    Value::str("line\nbreak"),
                    Value::F64(0.5),
                    Value::str("odd \\ chars"),
                    Value::Bool(false),
                ],
            )
            .unwrap();
        store
    }

    #[test]
    fn export_import_round_trip() {
        let original = sample();
        let text = export_table(&original, "inventory").unwrap();
        let restored = Store::new();
        let n = import_table(&restored, "inventory", &text, true).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            restored.select("inventory", &Predicate::True).unwrap(),
            original.select("inventory", &Predicate::True).unwrap()
        );
        // Keyed import enforces uniqueness like the original.
        assert!(restored
            .insert(
                "inventory",
                vec![
                    Value::I64(1),
                    Value::str("dup"),
                    Value::F64(0.0),
                    Value::Null,
                    Value::Bool(true),
                ],
            )
            .is_err());
    }

    #[test]
    fn header_round_trips_nullability() {
        let text = export_table(&sample(), "inventory").unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.contains("note:str?"), "{header}");
        assert!(header.contains("sku:i64"), "{header}");
    }

    #[test]
    fn special_characters_survive() {
        let original = sample();
        let text = export_table(&original, "inventory").unwrap();
        let restored = Store::new();
        import_table(&restored, "inventory", &text, true).unwrap();
        let row = restored
            .get_by_key("inventory", &[Value::I64(1)])
            .unwrap()
            .unwrap();
        assert_eq!(row.values[1], Value::str("toaster, deluxe"));
        let row = restored
            .get_by_key("inventory", &[Value::I64(2)])
            .unwrap()
            .unwrap();
        assert_eq!(row.values[1], Value::str("line\nbreak"));
        assert_eq!(row.values[3], Value::str("odd \\ chars"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let store = Store::new();
        assert!(import_table(&store, "t", "", true).is_err());
        assert!(import_table(&store, "t", "a:wat\n", true).is_err());
        assert!(import_table(&store, "t2", "a:i64\n1,2\n", true).is_err()); // arity
        assert!(import_table(&store, "t3", "a:i64\nxyz\n", true).is_err()); // type
    }

    #[test]
    fn non_scalar_tables_refuse_export() {
        let store = Store::new();
        store
            .create_table(
                Schema::new("t", vec![Column::required("v", ColumnType::Any)], &[]).unwrap(),
            )
            .unwrap();
        assert!(export_table(&store, "t").is_err());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary scalar tables survive export → import byte-exactly.
        #[test]
        fn random_tables_round_trip(
            rows in proptest::collection::vec(
                (any::<i64>(), ".{0,16}", any::<bool>()),
                0..20
            )
        ) {
            let store = Store::new();
            store
                .create_table(
                    Schema::new(
                        "t",
                        vec![
                            Column::required("k", ColumnType::I64),
                            Column::nullable("s", ColumnType::Str),
                            Column::required("b", ColumnType::Bool),
                        ],
                        &["k"],
                    )
                    .unwrap(),
                )
                .unwrap();
            let mut seen = std::collections::HashSet::new();
            for (k, s, b) in &rows {
                if !seen.insert(*k) {
                    continue; // keyed table: skip duplicate keys
                }
                store
                    .insert(
                        "t",
                        vec![Value::I64(*k), Value::Str(s.clone()), Value::Bool(*b)],
                    )
                    .unwrap();
            }
            let text = export_table(&store, "t").unwrap();
            let restored = Store::new();
            import_table(&restored, "t", &text, true).unwrap();
            prop_assert_eq!(
                restored.select("t", &Predicate::True).unwrap(),
                store.select("t", &Predicate::True).unwrap()
            );
        }

        /// The importer never panics on arbitrary text.
        #[test]
        fn importer_never_panics(text in ".{0,400}") {
            let store = Store::new();
            let _ = import_table(&store, "t", &text, false);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod null_marker_tests {
    use super::*;

    #[test]
    fn literal_null_marker_string_round_trips() {
        let store = Store::new();
        store
            .create_table(
                Schema::new(
                    "t",
                    vec![
                        Column::required("k", ColumnType::I64),
                        Column::nullable("s", ColumnType::Str),
                    ],
                    &["k"],
                )
                .unwrap(),
            )
            .unwrap();
        store
            .insert("t", vec![Value::I64(1), Value::str("␀")])
            .unwrap();
        store.insert("t", vec![Value::I64(2), Value::Null]).unwrap();
        let text = export_table(&store, "t").unwrap();
        let restored = Store::new();
        import_table(&restored, "t", &text, true).unwrap();
        let r1 = restored.get_by_key("t", &[Value::I64(1)]).unwrap().unwrap();
        let r2 = restored.get_by_key("t", &[Value::I64(2)]).unwrap().unwrap();
        assert_eq!(r1.values[1], Value::str("␀"), "literal string preserved");
        assert_eq!(r2.values[1], Value::Null, "null preserved");
    }
}
