//! Table schemas: typed columns, nullability and primary keys.

use syd_types::{SydError, SydResult, Value};

/// Column data types. `Any` admits every non-null value — the escape hatch
/// for ad-hoc stores (the paper explicitly supports "flat file / EXCEL
/// worksheet / list repository" devices with loose schemas, §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    I64,
    /// 64-bit float (also accepts `I64`, widened on read).
    F64,
    /// UTF-8 string.
    Str,
    /// Opaque bytes.
    Bytes,
    /// Any non-null value.
    Any,
}

impl ColumnType {
    /// True iff `value` conforms to this type (ignoring nullability).
    pub fn admits(self, value: &Value) -> bool {
        if matches!(value, Value::Null) {
            return false;
        }
        matches!(
            (self, value),
            (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::I64, Value::I64(_))
                | (ColumnType::F64, Value::F64(_) | Value::I64(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Bytes, Value::Bytes(_))
                | (ColumnType::Any, _)
        )
    }

    /// Stable code used by snapshots.
    pub fn code(self) -> u8 {
        match self {
            ColumnType::Bool => 0,
            ColumnType::I64 => 1,
            ColumnType::F64 => 2,
            ColumnType::Str => 3,
            ColumnType::Bytes => 4,
            ColumnType::Any => 5,
        }
    }

    /// Inverse of [`ColumnType::code`].
    pub fn from_code(code: u8) -> SydResult<Self> {
        Ok(match code {
            0 => ColumnType::Bool,
            1 => ColumnType::I64,
            2 => ColumnType::F64,
            3 => ColumnType::Str,
            4 => ColumnType::Bytes,
            5 => ColumnType::Any,
            other => return Err(SydError::Codec(format!("bad column type code {other}"))),
        })
    }
}

/// One column of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within the table.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// Whether `Null` is admitted.
    pub nullable: bool,
}

impl Column {
    /// A required (non-nullable) column.
    pub fn required(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// True iff `value` is admissible in this column.
    pub fn admits(&self, value: &Value) -> bool {
        if value.is_null() {
            self.nullable
        } else {
            self.ty.admits(value)
        }
    }
}

/// A table schema: name, columns and an optional primary key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Table name.
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Indexes (into `columns`) of the primary-key columns; empty = no key.
    pub primary_key: Vec<usize>,
}

impl Schema {
    /// Builds a schema; `primary_key` columns are named and must exist and
    /// be non-nullable.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        primary_key: &[&str],
    ) -> SydResult<Schema> {
        let name = name.into();
        // Duplicate column names are configuration errors.
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name == b.name {
                    return Err(SydError::SchemaViolation(format!(
                        "duplicate column `{}` in table `{name}`",
                        a.name
                    )));
                }
            }
        }
        let mut pk = Vec::with_capacity(primary_key.len());
        for key_col in primary_key {
            let idx = columns
                .iter()
                .position(|c| c.name == *key_col)
                .ok_or_else(|| SydError::NoSuchColumn((*key_col).to_owned()))?;
            if columns[idx].nullable {
                return Err(SydError::SchemaViolation(format!(
                    "primary key column `{key_col}` must not be nullable"
                )));
            }
            pk.push(idx);
        }
        Ok(Schema {
            name,
            columns,
            primary_key: pk,
        })
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> SydResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| SydError::NoSuchColumn(format!("{}.{name}", self.name)))
    }

    /// Validates a full row against column count, types and nullability.
    pub fn validate_row(&self, values: &[Value]) -> SydResult<()> {
        if values.len() != self.columns.len() {
            return Err(SydError::SchemaViolation(format!(
                "table `{}` expects {} columns, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        for (col, value) in self.columns.iter().zip(values) {
            if !col.admits(value) {
                return Err(SydError::SchemaViolation(format!(
                    "column `{}.{}` ({:?}{}) rejects {}",
                    self.name,
                    col.name,
                    col.ty,
                    if col.nullable { ", nullable" } else { "" },
                    value
                )));
            }
        }
        Ok(())
    }

    /// Extracts the primary-key values of a row (empty if no key).
    pub fn key_of(&self, values: &[Value]) -> Vec<Value> {
        self.primary_key
            .iter()
            .map(|&i| values[i].clone())
            .collect()
    }

    /// True iff the schema declares a primary key.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "slots",
            vec![
                Column::required("day", ColumnType::I64),
                Column::required("slot", ColumnType::I64),
                Column::required("status", ColumnType::Str),
                Column::nullable("meeting", ColumnType::I64),
            ],
            &["day", "slot"],
        )
        .unwrap()
    }

    #[test]
    fn valid_rows_pass() {
        let s = sample();
        s.validate_row(&[
            Value::I64(1),
            Value::I64(9),
            Value::str("free"),
            Value::Null,
        ])
        .unwrap();
    }

    #[test]
    fn wrong_arity_fails() {
        let s = sample();
        let err = s.validate_row(&[Value::I64(1)]).unwrap_err();
        assert!(err.to_string().contains("expects 4 columns"), "{err}");
    }

    #[test]
    fn type_mismatch_fails_with_column_name() {
        let s = sample();
        let err = s
            .validate_row(&[
                Value::str("not a day"),
                Value::I64(1),
                Value::str("free"),
                Value::Null,
            ])
            .unwrap_err();
        assert!(err.to_string().contains("slots.day"), "{err}");
    }

    #[test]
    fn null_in_required_column_fails() {
        let s = sample();
        assert!(s
            .validate_row(&[Value::Null, Value::I64(1), Value::str("x"), Value::Null])
            .is_err());
    }

    #[test]
    fn f64_column_accepts_i64() {
        let s = Schema::new("m", vec![Column::required("x", ColumnType::F64)], &[]).unwrap();
        s.validate_row(&[Value::I64(3)]).unwrap();
        s.validate_row(&[Value::F64(3.5)]).unwrap();
    }

    #[test]
    fn any_column_accepts_everything_but_null() {
        let col = Column::required("x", ColumnType::Any);
        assert!(col.admits(&Value::str("s")));
        assert!(col.admits(&Value::list([Value::I64(1)])));
        assert!(!col.admits(&Value::Null));
    }

    #[test]
    fn key_extraction() {
        let s = sample();
        let key = s.key_of(&[
            Value::I64(2),
            Value::I64(7),
            Value::str("free"),
            Value::Null,
        ]);
        assert_eq!(key, vec![Value::I64(2), Value::I64(7)]);
        assert!(s.has_primary_key());
    }

    #[test]
    fn unknown_pk_column_rejected() {
        let err = Schema::new(
            "t",
            vec![Column::required("a", ColumnType::I64)],
            &["missing"],
        )
        .unwrap_err();
        assert!(matches!(err, SydError::NoSuchColumn(_)));
    }

    #[test]
    fn nullable_pk_column_rejected() {
        let err =
            Schema::new("t", vec![Column::nullable("a", ColumnType::I64)], &["a"]).unwrap_err();
        assert!(matches!(err, SydError::SchemaViolation(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::new(
            "t",
            vec![
                Column::required("a", ColumnType::I64),
                Column::required("a", ColumnType::Str),
            ],
            &[],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate column"), "{err}");
    }

    #[test]
    fn column_type_codes_round_trip() {
        for ty in [
            ColumnType::Bool,
            ColumnType::I64,
            ColumnType::F64,
            ColumnType::Str,
            ColumnType::Bytes,
            ColumnType::Any,
        ] {
            assert_eq!(ColumnType::from_code(ty.code()).unwrap(), ty);
        }
        assert!(ColumnType::from_code(99).is_err());
    }
}
