//! In-memory table: rows, primary-key map and secondary indexes.
//!
//! `Table` is the single-threaded core; the [`crate::Store`] wraps each
//! table in a `parking_lot::RwLock` and layers triggers, transactions and
//! row locks on top.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use syd_types::{SydError, SydResult, Value};

use crate::key::OrdValue;
use crate::predicate::Predicate;
use crate::schema::Schema;

/// Identity of a row within its table (never reused).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RowId(pub u64);

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row-{}", self.0)
    }
}

/// A materialized row: its id plus a copy of its values.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Row identity.
    pub id: RowId,
    /// Cell values in schema column order.
    pub values: Vec<Value>,
}

impl Row {
    /// Cell by column name, resolved against `schema`.
    pub fn get<'a>(&'a self, schema: &Schema, column: &str) -> SydResult<&'a Value> {
        Ok(&self.values[schema.column_index(column)?])
    }
}

/// A change applied to one row, reported to triggers and undo logs.
#[derive(Clone, Debug, PartialEq)]
pub enum RowChange {
    /// Row inserted with these values.
    Inserted(RowId, Vec<Value>),
    /// Row updated from `old` to `new`.
    Updated(RowId, Vec<Value>, Vec<Value>),
    /// Row deleted; `old` values retained.
    Deleted(RowId, Vec<Value>),
}

pub(crate) struct Table {
    pub(crate) schema: Schema,
    rows: BTreeMap<RowId, Vec<Value>>,
    next_row: u64,
    pk_map: BTreeMap<Vec<OrdValue>, RowId>,
    indexes: HashMap<String, BTreeMap<OrdValue, BTreeSet<RowId>>>,
}

impl Table {
    pub(crate) fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: BTreeMap::new(),
            next_row: 1,
            pk_map: BTreeMap::new(),
            indexes: HashMap::new(),
        }
    }

    pub(crate) fn schema(&self) -> &Schema {
        &self.schema
    }

    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    pub(crate) fn create_index(&mut self, column: &str) -> SydResult<()> {
        let idx = self.schema.column_index(column)?;
        if self.indexes.contains_key(column) {
            return Ok(()); // idempotent
        }
        let mut index: BTreeMap<OrdValue, BTreeSet<RowId>> = BTreeMap::new();
        for (&row_id, values) in &self.rows {
            index
                .entry(OrdValue(values[idx].clone()))
                .or_default()
                .insert(row_id);
        }
        self.indexes.insert(column.to_owned(), index);
        Ok(())
    }

    pub(crate) fn indexed_columns(&self) -> Vec<String> {
        self.indexes.keys().cloned().collect()
    }

    fn index_insert(&mut self, row_id: RowId, values: &[Value]) {
        for (col, index) in &mut self.indexes {
            // Index creation validated the column; a vanished column
            // means a schema bug, and skipping beats corrupting.
            let Some(i) = self.schema.columns.iter().position(|c| &c.name == col) else {
                continue;
            };
            index
                .entry(OrdValue(values[i].clone()))
                .or_default()
                .insert(row_id);
        }
    }

    fn index_remove(&mut self, row_id: RowId, values: &[Value]) {
        for (col, index) in &mut self.indexes {
            let Some(i) = self.schema.columns.iter().position(|c| &c.name == col) else {
                continue;
            };
            let key = OrdValue(values[i].clone());
            if let Some(set) = index.get_mut(&key) {
                set.remove(&row_id);
                if set.is_empty() {
                    index.remove(&key);
                }
            }
        }
    }

    /// Inserts a validated row, enforcing primary-key uniqueness.
    pub(crate) fn insert(&mut self, values: Vec<Value>) -> SydResult<RowId> {
        self.schema.validate_row(&values)?;
        let key: Vec<OrdValue> = self
            .schema
            .key_of(&values)
            .into_iter()
            .map(OrdValue)
            .collect();
        if !key.is_empty() && self.pk_map.contains_key(&key) {
            return Err(SydError::SchemaViolation(format!(
                "duplicate primary key in `{}`",
                self.schema.name
            )));
        }
        let row_id = RowId(self.next_row);
        self.next_row += 1;
        self.index_insert(row_id, &values);
        if !key.is_empty() {
            self.pk_map.insert(key, row_id);
        }
        self.rows.insert(row_id, values);
        Ok(row_id)
    }

    /// Re-inserts a row under its original id (transaction undo).
    pub(crate) fn restore(&mut self, row_id: RowId, values: Vec<Value>) {
        let key: Vec<OrdValue> = self
            .schema
            .key_of(&values)
            .into_iter()
            .map(OrdValue)
            .collect();
        if !key.is_empty() {
            self.pk_map.insert(key, row_id);
        }
        self.index_insert(row_id, &values);
        self.rows.insert(row_id, values);
        self.next_row = self.next_row.max(row_id.0 + 1);
    }

    pub(crate) fn get(&self, row_id: RowId) -> Option<Row> {
        self.rows.get(&row_id).map(|values| Row {
            id: row_id,
            values: values.clone(),
        })
    }

    pub(crate) fn get_by_key(&self, key: &[Value]) -> Option<Row> {
        let key: Vec<OrdValue> = key.iter().cloned().map(OrdValue).collect();
        self.pk_map.get(&key).and_then(|&id| self.get(id))
    }

    /// Row ids matching `pred`, using the primary-key map or a secondary
    /// index when the predicate constrains a keyed/indexed column,
    /// otherwise scanning.
    fn candidates(&self, pred: &Predicate) -> SydResult<Vec<RowId>> {
        // Single-column primary keys serve equality/range directly from
        // the key map.
        if let [pk_idx] = self.schema.primary_key[..] {
            let pk_name = &self.schema.columns[pk_idx].name;
            if let Some((lo, hi)) = pred.bounds_for(pk_name) {
                use std::ops::Bound::*;
                let lo = lo.map_or(Unbounded, |v| Included(vec![OrdValue(v.clone())]));
                let hi = hi.map_or(Unbounded, |v| Included(vec![OrdValue(v.clone())]));
                let mut ids: Vec<RowId> = self.pk_map.range((lo, hi)).map(|(_, &id)| id).collect();
                ids.sort_unstable();
                return Ok(ids);
            }
        }
        for (col, index) in &self.indexes {
            if let Some((lo, hi)) = pred.bounds_for(col) {
                use std::ops::Bound::*;
                let lo = lo.map_or(Unbounded, |v| Included(OrdValue(v.clone())));
                let hi = hi.map_or(Unbounded, |v| Included(OrdValue(v.clone())));
                let mut ids = Vec::new();
                for (_, set) in index.range((lo, hi)) {
                    ids.extend(set.iter().copied());
                }
                ids.sort_unstable();
                return Ok(ids);
            }
        }
        Ok(self.rows.keys().copied().collect())
    }

    pub(crate) fn select(&self, pred: &Predicate) -> SydResult<Vec<Row>> {
        let mut out = Vec::new();
        for row_id in self.candidates(pred)? {
            let values = &self.rows[&row_id];
            if pred.eval(&self.schema, values)? {
                out.push(Row {
                    id: row_id,
                    values: values.clone(),
                });
            }
        }
        Ok(out)
    }

    pub(crate) fn count(&self, pred: &Predicate) -> SydResult<usize> {
        let mut n = 0;
        for row_id in self.candidates(pred)? {
            if pred.eval(&self.schema, &self.rows[&row_id])? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Applies `assignments` to every row matching `pred`; returns the
    /// changes (old and new values) for triggers and undo.
    pub(crate) fn update(
        &mut self,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> SydResult<Vec<RowChange>> {
        // Resolve and type-check assignments once.
        let mut resolved = Vec::with_capacity(assignments.len());
        for (col, value) in assignments {
            let idx = self.schema.column_index(col)?;
            if !self.schema.columns[idx].admits(value) {
                return Err(SydError::SchemaViolation(format!(
                    "column `{}.{col}` rejects {value}",
                    self.schema.name
                )));
            }
            resolved.push((idx, value.clone()));
        }

        let mut changes = Vec::new();
        for row_id in self.candidates(pred)? {
            let values = &self.rows[&row_id];
            if !pred.eval(&self.schema, values)? {
                continue;
            }
            let old = values.clone();
            let mut new = old.clone();
            for (idx, value) in &resolved {
                new[*idx] = value.clone();
            }
            // Primary-key updates must preserve uniqueness.
            let old_key: Vec<OrdValue> =
                self.schema.key_of(&old).into_iter().map(OrdValue).collect();
            let new_key: Vec<OrdValue> =
                self.schema.key_of(&new).into_iter().map(OrdValue).collect();
            if old_key != new_key {
                if self.pk_map.contains_key(&new_key) {
                    return Err(SydError::SchemaViolation(format!(
                        "primary-key update collides in `{}`",
                        self.schema.name
                    )));
                }
                self.pk_map.remove(&old_key);
                self.pk_map.insert(new_key, row_id);
            }
            self.index_remove(row_id, &old);
            self.index_insert(row_id, &new);
            self.rows.insert(row_id, new.clone());
            changes.push(RowChange::Updated(row_id, old, new));
        }
        Ok(changes)
    }

    /// Overwrites one row's values (transaction undo path).
    pub(crate) fn set_row(&mut self, row_id: RowId, values: Vec<Value>) {
        if let Some(old) = self.rows.get(&row_id).cloned() {
            let old_key: Vec<OrdValue> =
                self.schema.key_of(&old).into_iter().map(OrdValue).collect();
            if !old_key.is_empty() {
                self.pk_map.remove(&old_key);
            }
            self.index_remove(row_id, &old);
        }
        let new_key: Vec<OrdValue> = self
            .schema
            .key_of(&values)
            .into_iter()
            .map(OrdValue)
            .collect();
        if !new_key.is_empty() {
            self.pk_map.insert(new_key, row_id);
        }
        self.index_insert(row_id, &values);
        self.rows.insert(row_id, values);
    }

    /// Deletes rows matching `pred`; returns the deleted rows.
    pub(crate) fn delete(&mut self, pred: &Predicate) -> SydResult<Vec<RowChange>> {
        let mut changes = Vec::new();
        for row_id in self.candidates(pred)? {
            let values = &self.rows[&row_id];
            if !pred.eval(&self.schema, values)? {
                continue;
            }
            let old = values.clone();
            self.remove_row(row_id, &old);
            changes.push(RowChange::Deleted(row_id, old));
        }
        Ok(changes)
    }

    pub(crate) fn remove_by_id(&mut self, row_id: RowId) -> Option<Vec<Value>> {
        let values = self.rows.get(&row_id)?.clone();
        self.remove_row(row_id, &values);
        Some(values)
    }

    fn remove_row(&mut self, row_id: RowId, values: &[Value]) {
        let key: Vec<OrdValue> = self
            .schema
            .key_of(values)
            .into_iter()
            .map(OrdValue)
            .collect();
        if !key.is_empty() {
            self.pk_map.remove(&key);
        }
        self.index_remove(row_id, values);
        self.rows.remove(&row_id);
    }

    pub(crate) fn all_rows(&self) -> Vec<Row> {
        self.rows
            .iter()
            .map(|(&id, values)| Row {
                id,
                values: values.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn table() -> Table {
        Table::new(
            Schema::new(
                "slots",
                vec![
                    Column::required("day", ColumnType::I64),
                    Column::required("status", ColumnType::Str),
                ],
                &["day"],
            )
            .unwrap(),
        )
    }

    fn row(day: i64, status: &str) -> Vec<Value> {
        vec![Value::I64(day), Value::str(status)]
    }

    #[test]
    fn insert_select() {
        let mut t = table();
        let id1 = t.insert(row(1, "free")).unwrap();
        let id2 = t.insert(row(2, "busy")).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(t.len(), 2);
        let got = t
            .select(&Predicate::Eq("status".into(), Value::str("free")))
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values, row(1, "free"));
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = table();
        t.insert(row(1, "free")).unwrap();
        let err = t.insert(row(1, "busy")).unwrap_err();
        assert!(err.to_string().contains("duplicate primary key"), "{err}");
    }

    #[test]
    fn get_by_key() {
        let mut t = table();
        t.insert(row(4, "free")).unwrap();
        let got = t.get_by_key(&[Value::I64(4)]).unwrap();
        assert_eq!(got.values[1], Value::str("free"));
        assert!(t.get_by_key(&[Value::I64(5)]).is_none());
    }

    #[test]
    fn update_changes_matching_rows_only() {
        let mut t = table();
        t.insert(row(1, "free")).unwrap();
        t.insert(row(2, "free")).unwrap();
        t.insert(row(3, "busy")).unwrap();
        let changes = t
            .update(
                &Predicate::Eq("status".into(), Value::str("free")),
                &[("status".into(), Value::str("reserved"))],
            )
            .unwrap();
        assert_eq!(changes.len(), 2);
        assert_eq!(
            t.count(&Predicate::Eq("status".into(), Value::str("reserved")))
                .unwrap(),
            2
        );
        match &changes[0] {
            RowChange::Updated(_, old, new) => {
                assert_eq!(old[1], Value::str("free"));
                assert_eq!(new[1], Value::str("reserved"));
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn update_pk_collision_detected() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        let err = t
            .update(
                &Predicate::Eq("day".into(), Value::I64(1)),
                &[("day".into(), Value::I64(2))],
            )
            .unwrap_err();
        assert!(err.to_string().contains("collides"), "{err}");
    }

    #[test]
    fn delete_returns_old_rows() {
        let mut t = table();
        t.insert(row(1, "x")).unwrap();
        t.insert(row(2, "y")).unwrap();
        let changes = t
            .delete(&Predicate::Eq("day".into(), Value::I64(1)))
            .unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(t.len(), 1);
        assert!(t.get_by_key(&[Value::I64(1)]).is_none());
        // PK is free for reuse after delete.
        t.insert(row(1, "z")).unwrap();
    }

    #[test]
    fn index_serves_range_queries() {
        let mut t = Table::new(
            Schema::new(
                "t",
                vec![
                    Column::required("n", ColumnType::I64),
                    Column::required("tag", ColumnType::Str),
                ],
                &[],
            )
            .unwrap(),
        );
        for n in 0..100 {
            t.insert(vec![Value::I64(n), Value::str("x")]).unwrap();
        }
        t.create_index("n").unwrap();
        assert_eq!(t.indexed_columns(), vec!["n".to_string()]);
        let got = t
            .select(&Predicate::Between(
                "n".into(),
                Value::I64(10),
                Value::I64(19),
            ))
            .unwrap();
        assert_eq!(got.len(), 10);

        // Index stays consistent across update and delete.
        t.update(
            &Predicate::Eq("n".into(), Value::I64(10)),
            &[("n".into(), Value::I64(1000))],
        )
        .unwrap();
        let got = t
            .select(&Predicate::Eq("n".into(), Value::I64(1000)))
            .unwrap();
        assert_eq!(got.len(), 1);
        t.delete(&Predicate::Eq("n".into(), Value::I64(1000)))
            .unwrap();
        assert_eq!(
            t.count(&Predicate::Eq("n".into(), Value::I64(1000)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn index_created_after_rows_exist_is_backfilled() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        t.create_index("status").unwrap();
        let got = t
            .select(&Predicate::Eq("status".into(), Value::str("b")))
            .unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn restore_reinstates_row_and_key() {
        let mut t = table();
        let id = t.insert(row(1, "a")).unwrap();
        t.remove_by_id(id).unwrap();
        assert_eq!(t.len(), 0);
        t.restore(id, row(1, "a"));
        assert_eq!(t.get(id).unwrap().values, row(1, "a"));
        assert!(t.get_by_key(&[Value::I64(1)]).is_some());
        // next_row advanced beyond the restored id.
        let id2 = t.insert(row(2, "b")).unwrap();
        assert!(id2.0 > id.0);
    }

    #[test]
    fn set_row_maintains_pk_and_index() {
        let mut t = table();
        t.create_index("status").unwrap();
        let id = t.insert(row(1, "a")).unwrap();
        t.set_row(id, row(5, "z"));
        assert!(t.get_by_key(&[Value::I64(1)]).is_none());
        assert!(t.get_by_key(&[Value::I64(5)]).is_some());
        assert_eq!(
            t.count(&Predicate::Eq("status".into(), Value::str("z")))
                .unwrap(),
            1
        );
    }

    #[test]
    fn row_get_by_column_name() {
        let mut t = table();
        let id = t.insert(row(1, "free")).unwrap();
        let r = t.get(id).unwrap();
        assert_eq!(r.get(t.schema(), "status").unwrap(), &Value::str("free"));
        assert!(r.get(t.schema(), "ghost").is_err());
    }
}
