//! Ordered wrapper over [`Value`] for use as index and primary keys.

use core::cmp::Ordering;

use syd_types::Value;

/// A [`Value`] with the total order of [`Value::cmp_total`], usable as a
/// `BTreeMap` key. Primary-key maps and secondary indexes are keyed by
/// `OrdValue` (or vectors of them for composite keys).
#[derive(Clone, Debug)]
pub struct OrdValue(pub Value);

impl OrdValue {
    /// Borrows the wrapped value.
    pub fn value(&self) -> &Value {
        &self.0
    }

    /// Unwraps into the inner value.
    pub fn into_value(self) -> Value {
        self.0
    }
}

impl From<Value> for OrdValue {
    fn from(v: Value) -> Self {
        OrdValue(v)
    }
}

impl PartialEq for OrdValue {
    fn eq(&self, other: &Self) -> bool {
        self.0.cmp_total(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_total(&other.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn usable_as_btree_key() {
        let mut map = BTreeMap::new();
        map.insert(OrdValue(Value::I64(2)), "two");
        map.insert(OrdValue(Value::I64(1)), "one");
        map.insert(OrdValue(Value::str("a")), "a");
        let keys: Vec<_> = map.keys().map(|k| k.value().clone()).collect();
        // Numbers sort before strings per cmp_total's kind ranking.
        assert_eq!(keys, vec![Value::I64(1), Value::I64(2), Value::str("a")]);
    }

    #[test]
    fn mixed_numeric_equality() {
        assert_eq!(OrdValue(Value::I64(3)), OrdValue(Value::F64(3.0)));
        assert_ne!(OrdValue(Value::I64(3)), OrdValue(Value::F64(3.5)));
    }

    #[test]
    fn nan_keys_do_not_break_the_map() {
        let mut map = BTreeMap::new();
        map.insert(OrdValue(Value::F64(f64::NAN)), 1);
        map.insert(OrdValue(Value::F64(f64::NAN)), 2);
        assert_eq!(map.len(), 1, "NaN == NaN under cmp_total");
    }
}
