//! Binary snapshots of a store, via the `syd-wire` codec.
//!
//! Devices in the paper persist their calendar databases locally; proxies
//! also warm-start from a replica of the primary's state (§5.2). A snapshot
//! captures schemas, secondary indexes and rows; triggers and locks are
//! runtime state and are *not* captured (they are re-registered by the
//! application on startup, as the prototype's stored procedures were
//! re-installed with the schema).

use bytes::BufMut;
use syd_types::{SydError, SydResult, Value};
use syd_wire::codec::{put_varint, Decode, Encode, Reader};
use syd_wire::{decode_from_slice, encode_to_vec};

use crate::schema::{Column, ColumnType, Schema};
use crate::store::Store;
use crate::table::RowId;

/// Magic + version prefix of a snapshot.
const MAGIC: &[u8; 4] = b"SYDS";
const VERSION: u8 = 1;

struct TableSnapshot {
    schema: Schema,
    indexes: Vec<String>,
    rows: Vec<(u64, Vec<Value>)>,
}

struct StoreSnapshot {
    tables: Vec<TableSnapshot>,
}

impl Encode for TableSnapshot {
    fn encode(&self, buf: &mut impl BufMut) {
        self.schema.name.encode(buf);
        put_varint(buf, self.schema.columns.len() as u64);
        for col in &self.schema.columns {
            col.name.encode(buf);
            buf.put_u8(col.ty.code());
            col.nullable.encode(buf);
        }
        let pk: Vec<u64> = self.schema.primary_key.iter().map(|&i| i as u64).collect();
        pk.encode(buf);
        self.indexes.encode(buf);
        put_varint(buf, self.rows.len() as u64);
        for (row_id, values) in &self.rows {
            put_varint(buf, *row_id);
            values.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        let mut n = self.schema.name.encoded_len();
        n += syd_wire::codec::varint_len(self.schema.columns.len() as u64);
        for col in &self.schema.columns {
            n += col.name.encoded_len() + 1 + 1;
        }
        let pk: Vec<u64> = self.schema.primary_key.iter().map(|&i| i as u64).collect();
        n += pk.encoded_len();
        n += self.indexes.encoded_len();
        n += syd_wire::codec::varint_len(self.rows.len() as u64);
        for (row_id, values) in &self.rows {
            n += syd_wire::codec::varint_len(*row_id) + values.encoded_len();
        }
        n
    }
}

impl Decode for TableSnapshot {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let name = String::decode(r)?;
        let col_count = r.len_prefix()?;
        let mut columns = Vec::with_capacity(col_count.min(256));
        for _ in 0..col_count {
            let col_name = String::decode(r)?;
            let ty = ColumnType::from_code(r.u8()?)?;
            let nullable = bool::decode(r)?;
            columns.push(Column {
                name: col_name,
                ty,
                nullable,
            });
        }
        let pk_indices = Vec::<u64>::decode(r)?;
        let pk_names: Vec<String> = pk_indices
            .iter()
            .map(|&i| {
                columns
                    .get(i as usize)
                    .map(|c| c.name.clone())
                    .ok_or_else(|| SydError::Codec(format!("pk index {i} out of range")))
            })
            .collect::<SydResult<_>>()?;
        let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
        let schema = Schema::new(name, columns, &pk_refs)?;
        let indexes = Vec::<String>::decode(r)?;
        let row_count = r.len_prefix()?;
        let mut rows = Vec::with_capacity(row_count.min(4096));
        for _ in 0..row_count {
            let row_id = r.varint()?;
            let values = Vec::<Value>::decode(r)?;
            rows.push((row_id, values));
        }
        Ok(TableSnapshot {
            schema,
            indexes,
            rows,
        })
    }
}

impl Encode for StoreSnapshot {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        put_varint(buf, self.tables.len() as u64);
        for t in &self.tables {
            t.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        5 + syd_wire::codec::varint_len(self.tables.len() as u64)
            + self.tables.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl Decode for StoreSnapshot {
    fn decode(r: &mut Reader<'_>) -> SydResult<Self> {
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(SydError::Codec("not a SyD store snapshot".into()));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(SydError::Codec(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let table_count = r.len_prefix()?;
        let mut tables = Vec::with_capacity(table_count.min(256));
        for _ in 0..table_count {
            tables.push(TableSnapshot::decode(r)?);
        }
        Ok(StoreSnapshot { tables })
    }
}

impl Store {
    /// Serializes every table (schema, indexes, rows) to bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut tables = Vec::new();
        for name in self.table_names() {
            let Ok(handle) = self.table_handle(&name) else {
                continue; // dropped between listing and snapshot
            };
            let t = handle.read();
            let rows = t
                .all_rows()
                .into_iter()
                .map(|row| (row.id.0, row.values))
                .collect();
            tables.push(TableSnapshot {
                schema: t.schema().clone(),
                indexes: t.indexed_columns(),
                rows,
            });
        }
        encode_to_vec(&StoreSnapshot { tables })
    }

    /// Writes the snapshot to a file (the device's persistent image).
    pub fn save_to_file(&self, path: &std::path::Path) -> SydResult<()> {
        std::fs::write(path, self.snapshot())
            .map_err(|e| SydError::App(format!("cannot write snapshot: {e}")))
    }

    /// Loads a store from a snapshot file.
    pub fn load_from_file(path: &std::path::Path) -> SydResult<Store> {
        let bytes =
            std::fs::read(path).map_err(|e| SydError::App(format!("cannot read snapshot: {e}")))?;
        Store::from_snapshot(&bytes)
    }

    /// Reconstructs a store from snapshot bytes.
    pub fn from_snapshot(bytes: &[u8]) -> SydResult<Store> {
        let snapshot: StoreSnapshot = decode_from_slice(bytes)?;
        let store = Store::new();
        for t in snapshot.tables {
            store.create_table(t.schema.clone())?;
            let handle = store.table_handle(&t.schema.name)?;
            {
                let mut table = handle.write();
                for (row_id, values) in t.rows {
                    t.schema.validate_row(&values)?;
                    table.restore(RowId(row_id), values);
                }
                for column in &t.indexes {
                    table.create_index(column)?;
                }
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    fn sample_store() -> Store {
        let s = Store::new();
        s.create_table(
            Schema::new(
                "slots",
                vec![
                    Column::required("day", ColumnType::I64),
                    Column::required("status", ColumnType::Str),
                    Column::nullable("meeting", ColumnType::I64),
                ],
                &["day"],
            )
            .unwrap(),
        )
        .unwrap();
        s.create_index("slots", "status").unwrap();
        for day in 0..10 {
            s.insert(
                "slots",
                vec![
                    Value::I64(day),
                    Value::str(if day % 2 == 0 { "free" } else { "busy" }),
                    if day == 3 {
                        Value::I64(99)
                    } else {
                        Value::Null
                    },
                ],
            )
            .unwrap();
        }
        s.create_table(
            Schema::new("empty", vec![Column::required("x", ColumnType::Any)], &[]).unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let original = sample_store();
        let bytes = original.snapshot();
        let restored = Store::from_snapshot(&bytes).unwrap();

        assert_eq!(restored.table_names(), original.table_names());
        assert_eq!(restored.row_count("slots").unwrap(), 10);
        assert_eq!(restored.row_count("empty").unwrap(), 0);

        // Rows identical, including row ids and nulls.
        let orig_rows = original.select("slots", &Predicate::True).unwrap();
        let rest_rows = restored.select("slots", &Predicate::True).unwrap();
        assert_eq!(orig_rows, rest_rows);

        // Index still works.
        assert_eq!(
            restored
                .count("slots", &Predicate::Eq("status".into(), Value::str("free")))
                .unwrap(),
            5
        );

        // PK uniqueness still enforced after restore.
        assert!(restored
            .insert("slots", vec![Value::I64(3), Value::str("x"), Value::Null])
            .is_err());

        // Row-id counter advanced: new rows don't collide.
        let id = restored
            .insert("slots", vec![Value::I64(50), Value::str("x"), Value::Null])
            .unwrap();
        assert!(orig_rows.iter().all(|r| r.id != id));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let s = sample_store();
        assert_eq!(s.snapshot(), s.snapshot());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_store().snapshot();
        bytes[0] = b'X';
        let err = Store::from_snapshot(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("not a SyD store snapshot"),
            "{err}"
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_store().snapshot();
        bytes[4] = 200;
        assert!(Store::from_snapshot(&bytes).is_err());
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let bytes = sample_store().snapshot();
        assert!(Store::from_snapshot(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn empty_store_round_trips() {
        let s = Store::new();
        let restored = Store::from_snapshot(&s.snapshot()).unwrap();
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn file_persistence_round_trip() {
        let dir = std::env::temp_dir().join(format!("syd-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("device.syd");
        let original = sample_store();
        original.save_to_file(&path).unwrap();
        let restored = Store::load_from_file(&path).unwrap();
        assert_eq!(
            restored.select("slots", &Predicate::True).unwrap(),
            original.select("slots", &Predicate::True).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(Store::load_from_file(&path).is_err());
    }
}
