//! Model-based property tests: the store against a naive in-memory model
//! under random operation sequences.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::collections::BTreeMap;

use proptest::prelude::*;
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::Value;

#[derive(Clone, Debug)]
enum Op {
    Insert { key: i64, payload: i64 },
    UpdatePayload { key: i64, payload: i64 },
    Delete { key: i64 },
    DeleteRange { lo: i64, hi: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..30i64, any::<i64>()).prop_map(|(key, payload)| Op::Insert { key, payload }),
        (0..30i64, any::<i64>()).prop_map(|(key, payload)| Op::UpdatePayload { key, payload }),
        (0..30i64).prop_map(|key| Op::Delete { key }),
        (0..30i64, 0..30i64).prop_map(|(a, b)| Op::DeleteRange {
            lo: a.min(b),
            hi: a.max(b)
        }),
    ]
}

fn fresh_store(indexed: bool) -> Store {
    let store = Store::new();
    store
        .create_table(
            Schema::new(
                "t",
                vec![
                    Column::required("key", ColumnType::I64),
                    Column::required("payload", ColumnType::I64),
                ],
                &["key"],
            )
            .unwrap(),
        )
        .unwrap();
    if indexed {
        store.create_index("t", "payload").unwrap();
    }
    store
}

fn apply(store: &Store, model: &mut BTreeMap<i64, i64>, op: &Op) {
    match op {
        Op::Insert { key, payload } => {
            let result = store.insert("t", vec![Value::I64(*key), Value::I64(*payload)]);
            if model.contains_key(key) {
                assert!(result.is_err(), "duplicate PK must be rejected");
            } else {
                result.unwrap();
                model.insert(*key, *payload);
            }
        }
        Op::UpdatePayload { key, payload } => {
            let n = store
                .update(
                    "t",
                    &Predicate::Eq("key".into(), Value::I64(*key)),
                    &[("payload".into(), Value::I64(*payload))],
                )
                .unwrap();
            if let Some(entry) = model.get_mut(key) {
                assert_eq!(n, 1);
                *entry = *payload;
            } else {
                assert_eq!(n, 0);
            }
        }
        Op::Delete { key } => {
            let n = store
                .delete("t", &Predicate::Eq("key".into(), Value::I64(*key)))
                .unwrap();
            assert_eq!(n, usize::from(model.remove(key).is_some()));
        }
        Op::DeleteRange { lo, hi } => {
            let n = store
                .delete(
                    "t",
                    &Predicate::Between("key".into(), Value::I64(*lo), Value::I64(*hi)),
                )
                .unwrap();
            let keys: Vec<i64> = model.range(*lo..=*hi).map(|(k, _)| *k).collect();
            assert_eq!(n, keys.len());
            for k in keys {
                model.remove(&k);
            }
        }
    }
}

fn check_equivalence(store: &Store, model: &BTreeMap<i64, i64>) {
    // Row count and full contents.
    assert_eq!(store.row_count("t").unwrap(), model.len());
    let mut rows: Vec<(i64, i64)> = store
        .select("t", &Predicate::True)
        .unwrap()
        .into_iter()
        .map(|r| (r.values[0].as_i64().unwrap(), r.values[1].as_i64().unwrap()))
        .collect();
    rows.sort_unstable();
    let expected: Vec<(i64, i64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(rows, expected);

    // Point lookups agree.
    for key in 0..30i64 {
        let got = store
            .get_by_key("t", &[Value::I64(key)])
            .unwrap()
            .map(|r| r.values[1].as_i64().unwrap());
        assert_eq!(got, model.get(&key).copied(), "key {key}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let store = fresh_store(false);
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&store, &mut model, op);
        }
        check_equivalence(&store, &model);
    }

    /// The same sequences with a secondary index active: results must be
    /// identical (the index is an optimization, never a semantic change).
    #[test]
    fn indexed_store_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let store = fresh_store(true);
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&store, &mut model, op);
        }
        check_equivalence(&store, &model);
        // Index-served query agrees with a model filter.
        for payload in [-1i64, 0, 1] {
            let via_index = store
                .select("t", &Predicate::Eq("payload".into(), Value::I64(payload)))
                .unwrap()
                .len();
            let via_model = model.values().filter(|&&v| v == payload).count();
            prop_assert_eq!(via_index, via_model);
        }
    }

    /// Snapshot round trips preserve arbitrary store states.
    #[test]
    fn snapshot_preserves_random_states(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let store = fresh_store(true);
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&store, &mut model, op);
        }
        let restored = Store::from_snapshot(&store.snapshot()).unwrap();
        check_equivalence(&restored, &model);
    }

    /// A rolled-back transaction leaves no trace, no matter what it did.
    #[test]
    fn rollback_is_total(
        setup in proptest::collection::vec(arb_op(), 1..20),
        inside in proptest::collection::vec(arb_op(), 1..20),
    ) {
        let store = fresh_store(false);
        let mut model = BTreeMap::new();
        for op in &setup {
            apply(&store, &mut model, op);
        }
        let before = store.select("t", &Predicate::True).unwrap();

        let mut txn = store.begin();
        for op in &inside {
            // Transactions tolerate failing statements (e.g. duplicate PK).
            match op {
                Op::Insert { key, payload } => {
                    let _ = txn.insert("t", vec![Value::I64(*key), Value::I64(*payload)]);
                }
                Op::UpdatePayload { key, payload } => {
                    let _ = txn.update(
                        "t",
                        &Predicate::Eq("key".into(), Value::I64(*key)),
                        &[("payload".into(), Value::I64(*payload))],
                    );
                }
                Op::Delete { key } => {
                    let _ = txn.delete("t", &Predicate::Eq("key".into(), Value::I64(*key)));
                }
                Op::DeleteRange { lo, hi } => {
                    let _ = txn.delete(
                        "t",
                        &Predicate::Between("key".into(), Value::I64(*lo), Value::I64(*hi)),
                    );
                }
            }
        }
        txn.rollback().unwrap();

        let after = store.select("t", &Predicate::True).unwrap();
        prop_assert_eq!(before, after);
        prop_assert_eq!(store.locks().held_count(), 0);
        check_equivalence(&store, &model);
    }
}
