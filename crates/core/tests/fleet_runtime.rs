//! Fleet-scale runtime tests: device churn must not leak threads, and a
//! fleet must stay within the shared runtime's fixed thread budget.
//!
//! These assertions read `/proc/self/task` directly — the point of the
//! shared runtime is the *process-level* thread count, so that is what
//! gets measured, not any internal counter.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::time::{Duration, Instant};

use syd_core::SydEnv;
use syd_net::NetConfig;

/// Both tests in this binary read the process-wide thread count; running
/// them concurrently would let each observe the other's fleet.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn os_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, Iterator::count)
}

/// Waits until `os_threads()` drops to `limit` or the deadline passes,
/// returning the final count (worker keep-alive retirement takes up to
/// ~500 ms after load stops).
fn settle_below(limit: usize, deadline: Duration) -> usize {
    let until = Instant::now() + deadline;
    loop {
        let now = os_threads();
        if now <= limit || Instant::now() >= until {
            return now;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// These assertions only hold on the shared runtime; the legacy model
/// spends threads per device by design, so the whole binary is a no-op
/// under `SYD_RUNTIME=legacy` (CI reruns the full suite that way).
fn shared_mode() -> bool {
    syd_net::shared_runtime_enabled()
}

#[test]
fn device_churn_does_not_leak_threads() {
    if !shared_mode() {
        return;
    }
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let env = SydEnv::new_insecure(NetConfig::ideal());
    // Hold a runtime handle so churn rounds reuse one runtime instead of
    // re-creating reactor/timer threads between rounds (which would make
    // the baseline noisy).
    let runtime = env.runtime();
    runtime.set_scoped_metrics(true);

    // Round 0 establishes the baseline *after* the runtime, directory
    // and initial pool workers exist.
    let mut baseline = 0;
    for round in 0..3 {
        let devices: Vec<_> = (0..200)
            .map(|i| env.device(&format!("churn-{round}-{i}"), "").unwrap())
            .collect();
        // Touch the network so the fleet is live, not just constructed.
        devices[0]
            .engine()
            .invoke(
                devices[199].user(),
                &syd_types::ServiceName::new("syd.ping"),
                "ping",
                vec![],
            )
            .unwrap();
        for device in &devices {
            device.shutdown();
        }
        drop(devices);
        // Round 0: settle to the idle floor (reactor + timer + router +
        // retained worker + harness) and take it as the baseline.
        let settled = settle_below(
            if round == 0 { 16 } else { baseline },
            Duration::from_secs(10),
        );
        if round == 0 {
            baseline = settled;
        } else {
            // Spawning and dropping 200 devices twice more must return
            // to the round-0 floor (small slack for a racing keep-alive
            // worker or watchdog overflow thread mid-retirement).
            assert!(
                settled <= baseline + 3,
                "thread leak after churn round {round}: {settled} > baseline {baseline}"
            );
        }
    }
    // Only the deployment's directory server should remain registered.
    assert_eq!(runtime.nodes(), 1, "devices left registered on the reactor");
}

#[test]
fn dropping_fleet_without_shutdown_releases_runtime() {
    if !shared_mode() {
        return;
    }
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let baseline = settle_below(8, Duration::from_secs(5));
    {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        env.runtime().set_scoped_metrics(true);
        let devices: Vec<_> = (0..50)
            .map(|i| env.device(&format!("drop-{i}"), "").unwrap())
            .collect();
        devices[0]
            .engine()
            .invoke(
                devices[49].user(),
                &syd_types::ServiceName::new("syd.ping"),
                "ping",
                vec![],
            )
            .unwrap();
        // No shutdown() calls: everything — devices, directory, env —
        // just drops. The periodic wheel tasks must not pin the devices
        // (and through them the reactor/timer/worker threads) alive.
    }
    let settled = settle_below(baseline + 1, Duration::from_secs(10));
    assert!(
        settled <= baseline + 1,
        "runtime leaked after plain drop: {settled} threads vs baseline {baseline}"
    );
}

#[test]
fn fleet_thread_budget_holds_at_scale() {
    if !shared_mode() {
        return;
    }
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let runtime = env.runtime();
    runtime.set_scoped_metrics(true);
    let devices: Vec<_> = (0..300)
        .map(|i| env.device(&format!("budget-{i}"), "").unwrap())
        .collect();
    // A meeting-sized exchange across the fleet edge.
    devices[0]
        .engine()
        .invoke(
            devices[299].user(),
            &syd_types::ServiceName::new("syd.ping"),
            "ping",
            vec![],
        )
        .unwrap();
    // 300 devices, yet the process stays within the fixed budget:
    // workers (soft-capped) + reactor + timer + sim router + main +
    // test-harness slack. The legacy model would sit at 300+ threads.
    let threads = os_threads();
    assert!(
        threads <= 64,
        "shared runtime exceeded its thread budget: {threads} OS threads for 300 devices"
    );
    for device in &devices {
        device.shutdown();
    }
}
