//! Kernel-level integration tests: QoS-aware invocation, global events,
//! named-group invocation, and cross-device link expiry.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use syd_core::links::{Constraint, LinkRef, LinkSpec};
use syd_core::{DeviceRuntime, QosMonitor, SydEnv};
use syd_net::{LatencyModel, NetConfig};
use syd_types::{Clock, ServiceName, SimClock, SydError, Timestamp, Value};

fn echo_service(dev: &DeviceRuntime, svc: &ServiceName) {
    dev.register_service(
        svc,
        "echo",
        Arc::new(|_ctx, args: &[Value]| Ok(Value::list(args.to_vec()))),
    )
    .unwrap();
}

#[test]
fn qos_monitor_observes_engine_invocations() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();
    let svc = ServiceName::new("svc");
    echo_service(&b, &svc);

    let qos = Arc::new(QosMonitor::new());
    let engine = a.engine().clone().with_qos(Arc::clone(&qos));
    for _ in 0..5 {
        engine.invoke(b.user(), &svc, "echo", vec![]).unwrap();
    }
    // A failing method counts as a failure.
    let _ = engine.invoke(b.user(), &svc, "no_such_method", vec![]);

    let stats = qos.stats_for(b.user(), &svc).unwrap();
    assert_eq!(stats.calls, 6);
    assert_eq!(stats.failures, 1);
    assert!(stats.ewma > Duration::ZERO);
    assert!(stats.success_rate() > 0.8);
}

#[test]
fn qos_admission_refuses_slow_targets() {
    // 30 ms one-way latency → ~60 ms EWMA round trips.
    let cfg = NetConfig::ideal().with_latency(LatencyModel::fixed(Duration::from_millis(30)));
    let env = SydEnv::new_insecure(cfg);
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();
    let svc = ServiceName::new("svc");
    echo_service(&b, &svc);

    let qos = Arc::new(QosMonitor::new());
    let engine = a.engine().clone().with_qos(Arc::clone(&qos));
    for _ in 0..5 {
        engine.invoke(b.user(), &svc, "echo", vec![]).unwrap();
    }
    // A 10 ms deadline is hopeless against a ~60 ms EWMA: fail fast,
    // without a network round trip.
    let t = Instant::now();
    let err = engine
        .invoke_with_deadline(b.user(), &svc, "echo", vec![], Duration::from_millis(10))
        .unwrap_err();
    assert!(err.to_string().contains("admission"), "{err}");
    assert!(
        t.elapsed() < Duration::from_millis(5),
        "admission refusal must not hit the network"
    );
    // A generous deadline passes admission and succeeds.
    engine
        .invoke_with_deadline(b.user(), &svc, "echo", vec![], Duration::from_secs(2))
        .unwrap();
}

#[test]
fn global_events_reach_the_device_event_handler() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();

    let seen = Arc::new(AtomicU32::new(0));
    let sc = Arc::clone(&seen);
    b.events().subscribe(
        "fleet.",
        Arc::new(move |topic, payload| {
            assert_eq!(topic, "fleet.position");
            assert_eq!(payload, &Value::I64(9));
            sc.fetch_add(1, Ordering::SeqCst);
        }),
    );
    a.node()
        .publish_event(b.addr(), "fleet.position", Value::I64(9))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while seen.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "event never arrived");
        std::thread::yield_now();
    }
}

#[test]
fn named_group_invocation_resolves_and_aggregates() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let caller = env.device("caller", "").unwrap();
    let members: Vec<DeviceRuntime> = (0..3)
        .map(|i| env.device(&format!("m{i}"), "").unwrap())
        .collect();
    let svc = ServiceName::new("svc");
    for m in &members {
        echo_service(m, &svc);
    }
    let dir = env.directory_client();
    let group = dir.create_group("committee").unwrap();
    for m in &members {
        dir.group_add(group, m.user()).unwrap();
    }

    let result = caller
        .engine()
        .invoke_group_by_name("committee", &svc, "echo", vec![Value::I64(4)])
        .unwrap();
    assert!(result.all_ok());
    assert_eq!(result.ok_count(), 3);

    // Unknown group names are errors, not empty fan-outs.
    let err = caller
        .engine()
        .invoke_group_by_name("ghosts", &svc, "echo", vec![])
        .unwrap_err();
    assert!(matches!(err, SydError::NotRegistered(_)));
}

#[test]
fn expired_link_cascade_reaches_peers() {
    // A forward link with an expiry at A; its back link at B. When A's
    // scan collects the expired link, the cascade must clean B too.
    let clock = SimClock::new();
    let env = SydEnv::new_insecure(NetConfig::ideal())
        .with_clock(Arc::new(clock.clone()) as Arc<dyn Clock>);
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();

    let refs = vec![LinkRef::new(b.user(), "slot", "act")];
    let link = a
        .links()
        .create_negotiated(
            LinkSpec::negotiation("slot", Constraint::And, refs)
                .with_expiry(Timestamp::from_micros(1_000)),
            "back",
        )
        .unwrap();
    assert_eq!(a.links().count().unwrap(), 1);
    assert_eq!(b.links().count().unwrap(), 1);

    clock.advance(Duration::from_millis(2));
    let expired = a.links().expire_scan().unwrap();
    assert_eq!(expired, vec![link.id]);
    assert_eq!(a.links().count().unwrap(), 0);
    assert_eq!(b.links().count().unwrap(), 0, "cascade must clean the peer");
}

#[test]
fn link_acceptor_sees_offer_details() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sc = Arc::clone(&seen);
    let a_user = a.user();
    b.set_link_acceptor(Arc::new(move |entity, action, from| {
        sc.lock().push((entity.to_owned(), action.to_owned(), from));
        entity.starts_with("slot:")
    }));

    // Accepted: entity matches the acceptor's rule.
    a.links()
        .create_negotiated(
            LinkSpec::negotiation(
                "slot:1",
                Constraint::And,
                vec![LinkRef::new(b.user(), "slot:1", "reserve")],
            ),
            "back",
        )
        .unwrap();
    // Declined: wrong namespace.
    let err = a
        .links()
        .create_negotiated(
            LinkSpec::negotiation(
                "other",
                Constraint::And,
                vec![LinkRef::new(b.user(), "other", "reserve")],
            ),
            "back",
        )
        .unwrap_err();
    assert!(matches!(err, SydError::ConstraintFailed(_)));

    let offers = seen.lock().clone();
    assert_eq!(offers.len(), 2);
    assert_eq!(
        offers[0],
        ("slot:1".to_owned(), "reserve".to_owned(), a_user)
    );
    assert_eq!(offers[1].0, "other");
}

#[test]
fn engine_options_bound_call_time() {
    let env = SydEnv::new_insecure(NetConfig::ideal());
    let a = env.device("a", "").unwrap();
    let b = env.device("b", "").unwrap();
    let svc = ServiceName::new("sleepy");
    b.register_service(
        &svc,
        "nap",
        Arc::new(|_ctx, _args: &[Value]| {
            std::thread::sleep(Duration::from_millis(300));
            Ok(Value::Null)
        }),
    )
    .unwrap();
    let engine = a
        .engine()
        .clone()
        .with_options(syd_net::CallOptions::new().with_timeout(Duration::from_millis(50)));
    let t = Instant::now();
    let err = engine.invoke(b.user(), &svc, "nap", vec![]).unwrap_err();
    assert!(matches!(err, SydError::Timeout(_)), "{err}");
    assert!(t.elapsed() < Duration::from_millis(250));
}
