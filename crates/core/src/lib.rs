//! The SyD Kernel — the paper's contribution (Figures 1–3), in Rust.
//!
//! System on Devices (SyD) is middleware that lets independent per-device
//! data stores collaborate without a global schema. The kernel has the five
//! modules of §3.1 plus the coordination-link machinery of §4:
//!
//! | paper module      | here                  | role |
//! |-------------------|-----------------------|------|
//! | SyDDirectory      | [`directory`]         | user/group/service publishing, lookup, proxy maintenance |
//! | SyDListener       | [`listener`]          | registers device services, authenticates and dispatches remote invocations |
//! | SyDEngine         | [`engine`]            | single and group remote invocation, result aggregation |
//! | SyDEventHandler   | [`events`]            | local/global event registration, periodic tasks (link expiry) |
//! | SyDLinks          | [`links`]             | coordination links: subscription & negotiation, tentative/permanent, priority, waiting-link promotion, cascade delete, expiry, method coupling |
//!
//! Supporting pieces: [`negotiate`] implements §4.3's mark/lock → change
//! protocol (the distributed transaction under negotiation links),
//! [`device`] assembles a full SyD device (store + listener + links +
//! events on one network node), [`proxy`] provides §5.2's proxy takeover
//! for disconnected devices, and [`mod@env`] wires a whole deployment together
//! (network, directory, authenticator, clock).
//!
//! ```no_run
//! use syd_core::env::SydEnv;
//! use syd_net::NetConfig;
//!
//! let env = SydEnv::new(NetConfig::ideal(), "deployment passphrase");
//! let phil = env.device("phil", "phils-password").unwrap();
//! let andy = env.device("andy", "andys-password").unwrap();
//! // phil's applications can now publish services, create coordination
//! // links to andy, and invoke andy's services by user id alone.
//! # drop((phil, andy));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod directory;
pub mod engine;
pub mod env;
pub mod events;
pub mod links;
pub mod listener;
pub mod negotiate;
pub mod proxy;
pub mod qos;

pub use device::{DeviceRuntime, EntityHandler, SubscriptionHandler};
pub use directory::{DirectoryClient, DirectoryServer, GroupInfo, UserRecord};
pub use engine::{GroupResult, SydEngine};
pub use env::SydEnv;
pub use events::{EventHandler, PeriodicTask};
pub use links::{Constraint, Link, LinkKind, LinkRef, LinkStatus, LinksModule, WaitingEntry};
pub use listener::{InvokeCtx, Listener, ServiceMethod};
pub use negotiate::{NegotiationOutcome, Negotiator, Participant};
pub use proxy::ProxyHost;
pub use qos::QosMonitor;
