//! A complete SyD device: store + listener + engine + events + links on
//! one network node (the paper's "SyD deviceware" plus its slice of the
//! groupware, Figure 1's bottom two layers as seen from one device).
//!
//! A [`DeviceRuntime`] is what the paper calls a SyD device object host:
//! it encapsulates the local data store, publishes services through the
//! listener, reaches peers through the engine, and maintains the link
//! database. Applications build on exactly four extension points:
//!
//! * [`DeviceRuntime::register_service`] — publish methods (§3.1b),
//! * [`EntityHandler`] — how negotiation changes apply to local entities
//!   (mark/commit/abort of §4.3),
//! * [`SubscriptionHandler`] — how subscription-link notifications are
//!   consumed,
//! * the link acceptor — whether an offered link is accepted (§4.2 op. 2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use syd_crypto::Authenticator;
use syd_net::{Node, Transport};
use syd_store::{LockKey, Store};
use syd_telemetry::{names, EventKind, Journal, Registry};
use syd_types::{Clock, NodeAddr, ServiceName, SydError, SydResult, UserId, Value};

use crate::directory::DirectoryClient;
use crate::engine::SydEngine;
use crate::events::EventHandler;
use crate::links::LinksModule;
use crate::listener::{InvokeCtx, Listener, ListenerHandler, ServiceMethod};
use crate::negotiate::{fsm, link_service, Negotiator};

/// How long a participant waits for an entity lock before voting no.
const MARK_LOCK_WAIT: Duration = Duration::from_millis(200);

/// Negotiation sessions older than this are presumed abandoned (their
/// coordinator crashed between phases) and their locks are swept.
const STALE_SESSION_AGE: Duration = Duration::from_secs(10);

/// Applies negotiated changes to local entities (§4.3's Mark / Change /
/// Unlock, from the participant's side).
pub trait EntityHandler: Send + Sync + 'static {
    /// Availability check, called with the entity lock already held. An
    /// error makes this participant vote **no**.
    fn prepare(&self, entity: &str, change: &Value) -> SydResult<()>;
    /// Applies the change. Called only after the constraint was satisfied.
    fn commit(&self, entity: &str, change: &Value) -> SydResult<()>;
    /// Discards the marked change (constraint failed elsewhere). May be
    /// called even when `prepare` never ran or failed on this device (the
    /// coordinator aborts broadly to clean up lost-message locks), so it
    /// must be a safe no-op in that case.
    fn abort(&self, entity: &str, change: &Value);
}

/// Consumes subscription-link notifications (§4.2 op. 5's destination
/// method, and the "automatic flow of information" of §4.1).
pub trait SubscriptionHandler: Send + Sync + 'static {
    /// Handles a notification on `entity` with the link's `action` tag.
    fn on_notify(&self, entity: &str, action: &str, payload: &Value) -> SydResult<Value>;
}

/// Decides whether to accept an offered link (§4.2 op. 2 availability).
pub type LinkAcceptor = Arc<dyn Fn(&str, &str, UserId) -> bool + Send + Sync>;

struct DeviceInner {
    user: UserId,
    name: String,
    node: Node,
    store: Store,
    listener: Arc<Listener>,
    engine: SydEngine,
    events: EventHandler,
    links: Arc<LinksModule>,
    negotiator: Negotiator,
    journal: Arc<Journal>,
    clock: Arc<dyn Clock>,
    entity_handler: RwLock<Option<Arc<dyn EntityHandler>>>,
    subscription_handler: RwLock<Option<Arc<dyn SubscriptionHandler>>>,
    link_acceptor: RwLock<Option<LinkAcceptor>>,
    /// Active negotiation sessions touching this device's entities, with
    /// their start times (for the stale-session sweep).
    sessions: Mutex<HashMap<u64, Instant>>,
}

/// One SyD device. Cloning shares the device.
#[derive(Clone)]
pub struct DeviceRuntime {
    inner: Arc<DeviceInner>,
}

impl DeviceRuntime {
    /// Assembles a device for `user` on any transport backend (simulated
    /// network or real TCP), registering it in the directory. `auth`
    /// enables §5.4 request authentication when present.
    pub fn new(
        net: &dyn Transport,
        dir_addr: NodeAddr,
        user: UserId,
        name: &str,
        auth: Option<Arc<Authenticator>>,
        clock: Arc<dyn Clock>,
    ) -> SydResult<DeviceRuntime> {
        let node = Node::spawn_on(net)?;
        let directory = DirectoryClient::new(node.clone(), dir_addr);
        directory.register(user, name, node.addr())?;

        let store = Store::new();
        let listener = Arc::new(Listener::new(auth));
        listener.attach_metrics(node.metrics());
        node.set_handler(Arc::new(ListenerHandler(Arc::clone(&listener))));
        let journal = Arc::new(Journal::default());

        // Kernel and application methods are idempotent by design, so the
        // engine retries transient failures — the paper's weakly-connected
        // wireless environment loses individual messages routinely.
        let engine = SydEngine::new(node.clone(), directory)
            .with_options(syd_net::CallOptions::new().with_retries(2));
        // On the shared runtime the handler's periodic work rides the
        // fleet's timer wheel (no thread); legacy nodes get the private
        // scheduler thread.
        let events = match node.runtime() {
            Some(runtime) => EventHandler::with_timer(runtime.timer().clone()),
            None => EventHandler::new(),
        };
        // Global events arriving on the node feed the local event handler
        // (§3.1d: the event handler covers "local and global event
        // registration, monitoring, and triggering").
        {
            let events = events.clone();
            node.set_event_sink(Arc::new(move |_from, ev: syd_wire::EventMsg| {
                events.publish_local(&ev.topic, &ev.payload);
            }));
        }
        let links = Arc::new(LinksModule::new(
            store.clone(),
            engine.clone(),
            user,
            Arc::clone(&clock),
            events.clone(),
        )?);
        let negotiator = Negotiator::new(engine.clone(), user)
            .with_telemetry(node.metrics(), Arc::clone(&journal));
        // Link lifecycle transitions land in the postmortem journal —
        // §4.2 op. 3's waiting-link promotion as a first-class event, the
        // rest as timeline context.
        {
            let journal = Arc::clone(&journal);
            events.subscribe(
                "link.",
                Arc::new(move |topic: &str, payload: &Value| {
                    let kind = match topic {
                        "link.promoted" => EventKind::Promotion,
                        _ => EventKind::Info,
                    };
                    journal.record(kind, format!("{topic} {}", flat_detail(payload)));
                }),
            );
        }

        let inner = Arc::new(DeviceInner {
            user,
            name: name.to_owned(),
            node,
            store,
            listener,
            engine,
            events,
            links,
            negotiator,
            journal,
            clock,
            entity_handler: RwLock::new(None),
            subscription_handler: RwLock::new(None),
            link_acceptor: RwLock::new(None),
            sessions: Mutex::new(HashMap::new()),
        });
        let device = DeviceRuntime { inner };
        device.register_kernel_services();
        device.register_periodic_tasks();
        Ok(device)
    }

    // ---- accessors -----------------------------------------------------------

    /// The owning user.
    pub fn user(&self) -> UserId {
        self.inner.user
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// This device's network address.
    pub fn addr(&self) -> NodeAddr {
        self.inner.node.addr()
    }

    /// The embedded store.
    pub fn store(&self) -> &Store {
        &self.inner.store
    }

    /// The invocation engine.
    pub fn engine(&self) -> &SydEngine {
        &self.inner.engine
    }

    /// The event handler.
    pub fn events(&self) -> &EventHandler {
        &self.inner.events
    }

    /// The link database.
    pub fn links(&self) -> &LinksModule {
        &self.inner.links
    }

    /// The negotiation coordinator.
    pub fn negotiator(&self) -> &Negotiator {
        &self.inner.negotiator
    }

    /// The underlying node (identity stamping, raw calls).
    pub fn node(&self) -> &Node {
        &self.inner.node
    }

    /// This device's metrics registry (shared with the node, engine,
    /// listener, and negotiator).
    pub fn metrics(&self) -> &Arc<Registry> {
        self.inner.node.metrics()
    }

    /// The postmortem event journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.inner.journal
    }

    /// Human-readable telemetry dump: the metrics table followed by the
    /// journal timeline. For postmortems and harness output.
    pub fn telemetry_dump(&self) -> String {
        format!(
            "== device {} ({}) metrics ==\n{}\n== journal ==\n{}",
            self.inner.user,
            self.inner.name,
            syd_telemetry::metrics_table(&self.metrics().snapshot()),
            self.inner.journal.dump()
        )
    }

    /// Machine-readable telemetry dump: metrics then journal, one JSON
    /// object per line.
    pub fn telemetry_jsonl(&self) -> String {
        format!(
            "{}{}",
            syd_telemetry::metrics_jsonl(&self.metrics().snapshot()),
            self.inner.journal.to_jsonl()
        )
    }

    /// The deployment clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    // ---- application extension points ----------------------------------------

    /// Installs the entity handler (negotiation participant logic).
    pub fn set_entity_handler(&self, handler: Arc<dyn EntityHandler>) {
        *self.inner.entity_handler.write() = Some(handler);
    }

    /// Installs the subscription-notification handler.
    pub fn set_subscription_handler(&self, handler: Arc<dyn SubscriptionHandler>) {
        *self.inner.subscription_handler.write() = Some(handler);
    }

    /// Installs the link-offer acceptor (`(entity, action, from) -> bool`).
    /// Without one, every offer is accepted.
    pub fn set_link_acceptor(&self, acceptor: LinkAcceptor) {
        *self.inner.link_acceptor.write() = Some(acceptor);
    }

    /// Publishes an application service method locally and in the
    /// directory.
    pub fn register_service(
        &self,
        service: &ServiceName,
        method: &str,
        handler: ServiceMethod,
    ) -> SydResult<()> {
        self.inner.listener.register(service, method, handler);
        self.inner
            .engine
            .directory()
            .publish(self.inner.user, service)
    }

    /// Fires the links anchored on a local entity (app-facing trigger
    /// entry point; see [`LinksModule::entity_changed`]).
    pub fn entity_changed(
        &self,
        entity: &str,
        payload: &Value,
    ) -> SydResult<Vec<crate::links::FireResult>> {
        self.inner
            .links
            .entity_changed(entity, payload, &self.inner.negotiator)
    }

    // ---- mobility ---------------------------------------------------------------

    /// Takes the device off the network (out of radio range): the network
    /// drops its traffic and the directory marks it disconnected so
    /// lookups fail over to the proxy (§5.2).
    pub fn disconnect(&self) -> SydResult<()> {
        // Order matters: mark the directory first, then drop connectivity
        // (the directory call itself needs the network).
        self.inner
            .engine
            .directory()
            .set_connected(self.inner.user, false)?;
        self.inner.node.link().set_connected(false);
        Ok(())
    }

    /// Brings the device back: reconnects, then re-registers as connected.
    pub fn reconnect(&self) -> SydResult<()> {
        self.inner.node.link().set_connected(true);
        self.inner
            .engine
            .directory()
            .set_connected(self.inner.user, true)
    }

    /// True iff the device is currently connected.
    pub fn is_connected(&self) -> bool {
        self.inner.node.link().is_connected()
    }

    // ---- kernel services -----------------------------------------------------

    fn register_kernel_services(&self) {
        let svc = link_service();
        let listener = &self.inner.listener;

        // mark(session, entity, change) -> Bool vote
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "mark",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let session = args_get(args, 0)?.as_i64()? as u64;
                let entity = args_get(args, 1)?.as_str()?;
                let change = args_get(args, 2)?;
                let key = entity_lock_key(entity);
                if !inner.store.locks().try_acquire(session, &key) {
                    // Bounded wait, then give up and vote no. The wait is
                    // contention with another in-flight negotiation —
                    // worth its own span on the serving device.
                    let mut wait_span = inner.node.tracer().span(names::SPAN_LOCK_WAIT);
                    wait_span.attr("session", session);
                    if inner
                        .store
                        .locks()
                        .acquire(session, &key, MARK_LOCK_WAIT)
                        .is_err()
                    {
                        let vote = fsm::Vote::NoLockBusy;
                        inner.journal.record(
                            EventKind::Mark,
                            format!("session={session} entity={entity} vote=no reason=lock-busy"),
                        );
                        // Distinguishable from a durable prepare refusal:
                        // the coordinator treats any non-true vote as a
                        // decline, but a greedy grab must not commit while
                        // another negotiation holds this lock.
                        return Ok(vote.wire_reply());
                    }
                }
                inner.journal.record(
                    EventKind::Lock,
                    format!("session={session} entity={entity}"),
                );
                inner.sessions.lock().insert(session, Instant::now());
                let handler = inner.entity_handler.read().clone();
                // No entity handler prepares trivially: pure mutual
                // exclusion semantics, as in `fsm::participant_mark`.
                let prepared = match handler {
                    Some(h) => h.prepare(entity, change),
                    None => Ok(()),
                };
                let vote = match &prepared {
                    Ok(()) => {
                        inner.journal.record(
                            EventKind::Mark,
                            format!("session={session} entity={entity} vote=yes"),
                        );
                        fsm::Vote::Yes
                    }
                    Err(err) => {
                        // Journal-before-release, as in commit.
                        inner.journal.record(
                            EventKind::Mark,
                            format!("session={session} entity={entity} vote=no reason={err}"),
                        );
                        fsm::Vote::NoPrepare
                    }
                };
                if vote.releases_lock() {
                    inner.store.locks().release(session, &key);
                }
                Ok(vote.wire_reply())
            }),
        );

        // commit(session, entity, change) -> Null
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "commit",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let session = args_get(args, 0)?.as_i64()? as u64;
                let entity = args_get(args, 1)?.as_str()?;
                let change = args_get(args, 2)?;
                let handler = inner.entity_handler.read().clone();
                let result = match handler {
                    Some(h) => h.commit(entity, change),
                    None => Ok(()),
                };
                // Journal before releasing: the next session's `Lock`
                // record must sequence after this `Change`, or the journal
                // would show two holders of one entity.
                inner.journal.record(
                    EventKind::Change,
                    format!(
                        "session={session} entity={entity} applied={}",
                        result.is_ok()
                    ),
                );
                inner
                    .store
                    .locks()
                    .release(session, &entity_lock_key(entity));
                // Forget the session only once it holds no other lock on
                // this device: a session may cover several local entities,
                // and dropping it on the first commit would hide its
                // remaining locks from the stale-session sweep if a later
                // commit message is lost.
                if inner.store.locks().held_by(session) == 0 {
                    inner.sessions.lock().remove(&session);
                }
                result.map(|()| Value::Null)
            }),
        );

        // abort(session, entity, change) -> Null
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "abort",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let session = args_get(args, 0)?.as_i64()? as u64;
                let entity = args_get(args, 1)?.as_str()?;
                let change = args_get(args, 2)?;
                if let Some(h) = inner.entity_handler.read().clone() {
                    h.abort(entity, change);
                }
                // Journal-before-release, as in commit.
                inner.journal.record(
                    EventKind::Abort,
                    format!("session={session} entity={entity} reason=coordinator-abort"),
                );
                inner
                    .store
                    .locks()
                    .release(session, &entity_lock_key(entity));
                // Same rule as commit: see the multi-entity note there.
                if inner.store.locks().held_by(session) == 0 {
                    inner.sessions.lock().remove(&session);
                }
                Ok(Value::Null)
            }),
        );

        // offer_link(entity, action, from_user) -> Bool
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "offer_link",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let entity = args_get(args, 0)?.as_str()?;
                let action = args_get(args, 1)?.as_str()?;
                let from = UserId::new(args_get(args, 2)?.as_i64()? as u64);
                let acceptor = inner.link_acceptor.read().clone();
                let accept = match acceptor {
                    Some(f) => f(entity, action, from),
                    None => true,
                };
                Ok(Value::Bool(accept))
            }),
        );

        // install_link(link value) -> link id
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "install_link",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let id = inner.links.install_remote(args_get(args, 0)?)?;
                Ok(Value::from(id.raw()))
            }),
        );

        // delete_by_corr(corr, visited list) -> deleted count
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "delete_by_corr",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let corr = args_get(args, 0)?.as_str()?;
                let visited = args_get(args, 1)?
                    .as_list()?
                    .iter()
                    .map(|v| Ok(v.as_i64()? as u64))
                    .collect::<SydResult<Vec<u64>>>()?;
                let report = inner.links.delete_by_corr(corr, visited)?;
                Ok(Value::from(report.deleted.len() as u64))
            }),
        );

        // notify(entity, action, payload) -> handler result
        let inner = Arc::downgrade(&self.inner);
        listener.register(
            &svc,
            "notify",
            Arc::new(move |_ctx: &InvokeCtx, args: &[Value]| {
                let inner = inner.upgrade().ok_or(SydError::Shutdown)?;
                let entity = args_get(args, 0)?.as_str()?;
                let action = args_get(args, 1)?.as_str()?;
                let payload = args_get(args, 2)?;
                inner
                    .events
                    .publish_local(&format!("link.notify.{action}"), payload);
                let handler = inner.subscription_handler.read().clone();
                match handler {
                    Some(h) => h.on_notify(entity, action, payload),
                    None => Ok(Value::Null),
                }
            }),
        );

        // ping() -> "pong" (liveness probe; proxies use it)
        listener.register(
            &ServiceName::new("syd.ping"),
            "ping",
            Arc::new(|_ctx: &InvokeCtx, _args: &[Value]| Ok(Value::str("pong"))),
        );
    }

    fn register_periodic_tasks(&self) {
        // §4.2 op. 6: link expiry. Captures a weak handle: on the shared
        // runtime the fleet-wide timer wheel owns this closure, and a
        // strong `links` here would pin the device (and through its node,
        // the whole runtime) alive after the last external handle drops.
        let inner = Arc::downgrade(&self.inner);
        self.inner
            .events
            .register_periodic("link-expiry", Duration::from_millis(500), move || {
                if let Some(inner) = inner.upgrade() {
                    let _ = inner.links.expire_scan();
                }
            });

        // Stale negotiation sessions: a coordinator that died between mark
        // and commit leaves entities locked; sweep them.
        let inner = Arc::downgrade(&self.inner);
        self.inner
            .events
            .register_periodic("stale-sessions", Duration::from_secs(5), move || {
                if let Some(inner) = inner.upgrade() {
                    sweep_sessions(&inner, STALE_SESSION_AGE);
                }
            });
    }

    /// Sweeps negotiation sessions older than `older_than`, releasing any
    /// entity locks they still hold (the §4.3 lost-message cleanup,
    /// normally run by the periodic `stale-sessions` task). Returns the
    /// number of sessions swept. Exposed so fault-injection tests can
    /// force a sweep without waiting for the scheduler.
    pub fn sweep_stale_sessions(&self, older_than: Duration) -> usize {
        sweep_sessions(&self.inner, older_than)
    }

    /// Stops the device: unregisters from the network, stops pools and
    /// the event scheduler.
    pub fn shutdown(&self) {
        self.inner.events.shutdown();
        self.inner.node.shutdown();
    }
}

/// The lock key guarding a named entity on a device.
pub fn entity_lock_key(entity: &str) -> LockKey {
    LockKey::new("syd.entity", [Value::str(entity)])
}

/// Releases the locks of sessions older than `older_than` and forgets
/// them, journaling an `Abort` per reclaimed entity lock so the invariant
/// checker sees the cleanup instead of reporting a leak.
fn sweep_sessions(inner: &DeviceInner, older_than: Duration) -> usize {
    let mut sessions = inner.sessions.lock();
    let now = Instant::now();
    let mut swept = 0;
    sessions.retain(|&session, &mut started| {
        if now.duration_since(started) > older_than {
            for key in inner.store.locks().keys_held_by(session) {
                if key.table == "syd.entity" {
                    if let Some(entity) = key.key.first() {
                        inner.journal.record(
                            EventKind::Abort,
                            format!(
                                "session={session} entity={} reason=stale-sweep",
                                flat_detail(entity.value())
                            ),
                        );
                    }
                }
            }
            inner.store.locks().release_all(session);
            debug_assert_eq!(
                inner.store.locks().held_by(session),
                0,
                "session {session} still holds locks after sweep"
            );
            swept += 1;
            false
        } else {
            true
        }
    });
    swept
}

/// Renders an event payload as flat `key=value` tokens for the journal
/// (map payloads become `k1=v1 k2=v2` in sorted key order; strings are
/// unquoted so the checker can parse them back).
fn flat_detail(payload: &Value) -> String {
    fn scalar(v: &Value) -> String {
        match v {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }
    match payload {
        Value::Map(m) => m
            .iter()
            .map(|(k, v)| format!("{k}={}", scalar(v)))
            .collect::<Vec<_>>()
            .join(" "),
        other => scalar(other),
    }
}

fn args_get(args: &[Value], i: usize) -> SydResult<&Value> {
    args.get(i)
        .ok_or_else(|| SydError::Protocol(format!("missing argument {i}")))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::directory::DirectoryServer;
    use crate::links::{Constraint, LinkSpec};
    use crate::negotiate::Participant;
    use syd_net::Network;
    use syd_types::SystemClock;

    fn rig(n: usize) -> (Network, DirectoryServer, Vec<DeviceRuntime>) {
        let net = Network::ideal();
        let dir = DirectoryServer::start(&net);
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let devices = (1..=n as u64)
            .map(|id| {
                DeviceRuntime::new(
                    &net,
                    dir.addr(),
                    UserId::new(id),
                    &format!("user{id}"),
                    None,
                    Arc::clone(&clock),
                )
                .unwrap()
            })
            .collect();
        (net, dir, devices)
    }

    /// Entity handler over a shared status map: prepare succeeds when the
    /// entity is "free"; commit sets it to the payload string.
    struct MapHandler {
        state: Arc<Mutex<HashMap<String, String>>>,
    }

    impl EntityHandler for MapHandler {
        fn prepare(&self, entity: &str, _change: &Value) -> SydResult<()> {
            let state = self.state.lock();
            match state.get(entity).map(String::as_str) {
                None | Some("free") => Ok(()),
                Some(other) => Err(SydError::App(format!("{entity} is {other}"))),
            }
        }
        fn commit(&self, entity: &str, change: &Value) -> SydResult<()> {
            self.state
                .lock()
                .insert(entity.to_owned(), change.as_str()?.to_owned());
            Ok(())
        }
        fn abort(&self, _entity: &str, _change: &Value) {}
    }

    fn install_map_handlers(devices: &[DeviceRuntime]) -> Vec<Arc<Mutex<HashMap<String, String>>>> {
        devices
            .iter()
            .map(|d| {
                let state = Arc::new(Mutex::new(HashMap::new()));
                d.set_entity_handler(Arc::new(MapHandler {
                    state: Arc::clone(&state),
                }));
                state
            })
            .collect()
    }

    #[test]
    fn ping_service_answers() {
        let (_net, _dir, devices) = rig(2);
        let out = devices[0]
            .engine()
            .invoke(
                devices[1].user(),
                &ServiceName::new("syd.ping"),
                "ping",
                vec![],
            )
            .unwrap();
        assert_eq!(out, Value::str("pong"));
    }

    #[test]
    fn negotiation_and_commits_everywhere() {
        let (_net, _dir, devices) = rig(3);
        let states = install_map_handlers(&devices);
        let participants: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "slot:1:9", Value::str("reserved")))
            .collect();
        let outcome = devices[0]
            .negotiator()
            .negotiate_and(&participants)
            .unwrap();
        assert!(outcome.satisfied, "{outcome:?}");
        assert_eq!(outcome.committed.len(), 3);
        for state in &states {
            assert_eq!(state.lock().get("slot:1:9").unwrap(), "reserved");
        }
        // All locks released.
        for d in &devices {
            assert_eq!(d.store().locks().held_count(), 0);
        }
    }

    #[test]
    fn negotiation_and_aborts_when_one_declines() {
        let (_net, _dir, devices) = rig(3);
        let states = install_map_handlers(&devices);
        // Device 2's slot is already busy.
        states[2]
            .lock()
            .insert("slot:1:9".to_owned(), "busy".to_owned());
        let participants: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "slot:1:9", Value::str("reserved")))
            .collect();
        let outcome = devices[0]
            .negotiator()
            .negotiate_and(&participants)
            .unwrap();
        assert!(!outcome.satisfied);
        assert!(outcome.committed.is_empty());
        assert_eq!(outcome.declined, vec![devices[2].user()]);
        // Nobody changed.
        assert!(states[0].lock().get("slot:1:9").is_none());
        assert!(states[1].lock().get("slot:1:9").is_none());
        for d in &devices {
            assert_eq!(d.store().locks().held_count(), 0);
        }
    }

    #[test]
    fn greedy_grab_aborts_under_lock_contention() {
        let (_net, _dir, devices) = rig(3);
        let states = install_map_handlers(&devices);
        // A foreign negotiation session holds device 2's entity lock, as
        // if another coordinator were mid-negotiation on the same slot.
        let key = entity_lock_key("slot:1:9");
        assert!(devices[2].store().locks().try_acquire(0xdead, &key));
        let participants: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "slot:1:9", Value::str("reserved")))
            .collect();
        let outcome = devices[0]
            .negotiator()
            .negotiate_available(&participants)
            .unwrap();
        // Devices 0 and 1 voted yes but nothing may commit: grabbing a
        // partial set while another coordinator holds the rest is how a
        // slot ends up split between two meetings.
        assert_eq!(outcome.contended, vec![devices[2].user()]);
        assert!(outcome.committed.is_empty(), "{outcome:?}");
        assert!(!outcome.satisfied);
        for state in &states {
            assert!(state.lock().get("slot:1:9").is_none());
        }
        for d in &devices[..2] {
            assert_eq!(d.store().locks().held_count(), 0);
        }
        // Once the other session is gone the same grab commits everyone.
        devices[2].store().locks().release(0xdead, &key);
        let outcome = devices[0]
            .negotiator()
            .negotiate_available(&participants)
            .unwrap();
        assert!(outcome.satisfied, "{outcome:?}");
        assert_eq!(outcome.committed.len(), 3);
    }

    #[test]
    fn negotiation_or_commits_available_subset() {
        let (_net, _dir, devices) = rig(4);
        let states = install_map_handlers(&devices);
        states[1].lock().insert("e".to_owned(), "busy".to_owned());
        let participants: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "e", Value::str("x")))
            .collect();
        let outcome = devices[0]
            .negotiator()
            .negotiate_or(2, &participants)
            .unwrap();
        assert!(outcome.satisfied);
        assert_eq!(outcome.committed.len(), 3); // everyone available commits
        assert_eq!(outcome.declined, vec![devices[1].user()]);
    }

    #[test]
    fn negotiation_or_fails_below_k() {
        let (_net, _dir, devices) = rig(3);
        let states = install_map_handlers(&devices);
        states[1].lock().insert("e".to_owned(), "busy".to_owned());
        states[2].lock().insert("e".to_owned(), "busy".to_owned());
        let participants: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "e", Value::str("x")))
            .collect();
        let outcome = devices[0]
            .negotiator()
            .negotiate_or(2, &participants)
            .unwrap();
        assert!(!outcome.satisfied);
        assert!(outcome.committed.is_empty());
        // The one yes-voter was aborted, not committed.
        assert!(states[0].lock().get("e").is_none());
    }

    #[test]
    fn negotiation_xor_commits_exactly_k() {
        let (_net, _dir, devices) = rig(3);
        let states = install_map_handlers(&devices);
        let participants: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "e", Value::str("x")))
            .collect();
        let outcome = devices[0]
            .negotiator()
            .negotiate_xor(1, &participants)
            .unwrap();
        assert!(outcome.satisfied);
        assert_eq!(outcome.committed.len(), 1);
        assert_eq!(outcome.aborted.len(), 2);
        let changed = states.iter().filter(|s| s.lock().contains_key("e")).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn concurrent_negotiations_on_same_entity_dont_double_commit() {
        let (_net, _dir, devices) = rig(3);
        let states = install_map_handlers(&devices);
        // Two coordinators race to reserve the same slot on all three
        // devices. Exactly one negotiation-and may win (handler refuses
        // non-"free" entities); the loser must abort cleanly.
        let d0 = devices[0].clone();
        let d1 = devices[1].clone();
        let p0: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "s", Value::str("meeting-A")))
            .collect();
        let p1: Vec<Participant> = devices
            .iter()
            .map(|d| Participant::new(d.user(), "s", Value::str("meeting-B")))
            .collect();
        let t0 = std::thread::spawn(move || d0.negotiator().negotiate_and(&p0).unwrap());
        let t1 = std::thread::spawn(move || d1.negotiator().negotiate_and(&p1).unwrap());
        let o0 = t0.join().unwrap();
        let o1 = t1.join().unwrap();
        let winners = [o0.satisfied, o1.satisfied].iter().filter(|&&b| b).count();
        assert!(winners <= 1, "both negotiations committed: {o0:?} {o1:?}");
        if winners == 1 {
            let value = if o0.satisfied {
                "meeting-A"
            } else {
                "meeting-B"
            };
            for state in &states {
                assert_eq!(state.lock().get("s").unwrap(), value);
            }
        }
        for d in &devices {
            assert_eq!(d.store().locks().held_count(), 0);
        }
    }

    #[test]
    fn subscription_link_notifies_peers() {
        let (_net, _dir, devices) = rig(3);
        let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
        struct Recorder(Arc<Mutex<Vec<(String, String)>>>);
        impl SubscriptionHandler for Recorder {
            fn on_notify(&self, entity: &str, action: &str, _payload: &Value) -> SydResult<Value> {
                self.0.lock().push((entity.to_owned(), action.to_owned()));
                Ok(Value::Null)
            }
        }
        for d in &devices[1..] {
            d.set_subscription_handler(Arc::new(Recorder(Arc::clone(&seen))));
        }
        let link = devices[0]
            .links()
            .add_local(LinkSpec::subscription(
                "my-slot",
                vec![
                    crate::links::LinkRef::new(devices[1].user(), "their-slot", "sync"),
                    crate::links::LinkRef::new(devices[2].user(), "their-slot", "sync"),
                ],
            ))
            .unwrap();
        let results = devices[0]
            .entity_changed("my-slot", &Value::str("changed"))
            .unwrap();
        assert_eq!(results.len(), 1);
        match &results[0] {
            crate::links::FireResult::Notified {
                link: l,
                delivered,
                failed,
            } => {
                assert_eq!(*l, link.id);
                assert_eq!(*delivered, 2);
                assert_eq!(*failed, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(seen.lock().len(), 2);
    }

    #[test]
    fn negotiated_link_creation_installs_back_links() {
        let (_net, _dir, devices) = rig(3);
        let spec = LinkSpec::negotiation(
            "slot:2:10",
            Constraint::And,
            vec![
                crate::links::LinkRef::new(devices[1].user(), "slot:2:10", "reserve"),
                crate::links::LinkRef::new(devices[2].user(), "slot:2:10", "reserve"),
            ],
        );
        let forward = devices[0]
            .links()
            .create_negotiated(spec, "inform")
            .unwrap();
        assert_eq!(devices[0].links().count().unwrap(), 1);
        // Each peer holds a back subscription link under the same corr.
        for d in &devices[1..] {
            let links = d.links().by_corr(&forward.corr).unwrap();
            assert_eq!(links.len(), 1);
            assert_eq!(links[0].kind, crate::links::LinkKind::Subscription);
            assert_eq!(links[0].refs[0].user, devices[0].user());
        }
    }

    #[test]
    fn declined_link_offer_creates_nothing() {
        let (_net, _dir, devices) = rig(2);
        devices[1].set_link_acceptor(Arc::new(|_entity, _action, _from| false));
        let spec = LinkSpec::negotiation(
            "e",
            Constraint::And,
            vec![crate::links::LinkRef::new(devices[1].user(), "e", "a")],
        );
        let err = devices[0]
            .links()
            .create_negotiated(spec, "back")
            .unwrap_err();
        assert!(matches!(err, SydError::ConstraintFailed(_)), "{err}");
        assert_eq!(devices[0].links().count().unwrap(), 0);
        assert_eq!(devices[1].links().count().unwrap(), 0);
    }

    #[test]
    fn cascade_delete_removes_all_halves() {
        let (_net, _dir, devices) = rig(3);
        let spec = LinkSpec::negotiation(
            "e",
            Constraint::And,
            vec![
                crate::links::LinkRef::new(devices[1].user(), "e", "a"),
                crate::links::LinkRef::new(devices[2].user(), "e", "a"),
            ],
        );
        let forward = devices[0].links().create_negotiated(spec, "back").unwrap();
        assert_eq!(devices[1].links().count().unwrap(), 1);
        let report = devices[0].links().delete(forward.id, true).unwrap();
        assert_eq!(report.deleted, vec![forward.id]);
        assert_eq!(report.cascaded_to.len(), 2);
        for d in &devices {
            assert_eq!(
                d.links().count().unwrap(),
                0,
                "{} still has links",
                d.name()
            );
        }
    }

    #[test]
    fn waiting_link_promotion_follows_priority() {
        let (_net, _dir, devices) = rig(1);
        let d = &devices[0];
        let permanent = d
            .links()
            .add_local(LinkSpec::subscription("e", vec![]))
            .unwrap();
        let low = d
            .links()
            .add_local(
                LinkSpec::subscription("e", vec![])
                    .with_priority(Priority::new(10))
                    .waiting_on(permanent.id, 1),
            )
            .unwrap();
        let high = d
            .links()
            .add_local(
                LinkSpec::subscription("e", vec![])
                    .with_priority(Priority::new(200))
                    .waiting_on(permanent.id, 2),
            )
            .unwrap();

        let promoted: Arc<Mutex<Vec<LinkId>>> = Arc::new(Mutex::new(Vec::new()));
        let pc = Arc::clone(&promoted);
        d.links()
            .set_promotion_handler(Arc::new(move |link| pc.lock().push(link.id)));

        let report = d.links().delete(permanent.id, false).unwrap();
        assert_eq!(report.promoted, vec![high.id]);
        assert_eq!(*promoted.lock(), vec![high.id]);
        assert_eq!(
            d.links().get(high.id).unwrap().unwrap().status,
            crate::links::LinkStatus::Permanent
        );
        // Low-priority waiter is still tentative, re-anchored on `high`.
        assert_eq!(
            d.links().get(low.id).unwrap().unwrap().status,
            crate::links::LinkStatus::Tentative
        );
        // Deleting the newly permanent link promotes the survivor.
        let report = d.links().delete(high.id, false).unwrap();
        assert_eq!(report.promoted, vec![low.id]);
    }

    #[test]
    fn waiting_group_promotes_together() {
        let (_net, _dir, devices) = rig(1);
        let d = &devices[0];
        let permanent = d
            .links()
            .add_local(LinkSpec::subscription("e", vec![]))
            .unwrap();
        // Two links in group 7, one in group 8, all same priority.
        let a = d
            .links()
            .add_local(LinkSpec::subscription("e1", vec![]).waiting_on(permanent.id, 7))
            .unwrap();
        let b = d
            .links()
            .add_local(LinkSpec::subscription("e2", vec![]).waiting_on(permanent.id, 7))
            .unwrap();
        let c = d
            .links()
            .add_local(LinkSpec::subscription("e3", vec![]).waiting_on(permanent.id, 8))
            .unwrap();
        let report = d.links().delete(permanent.id, false).unwrap();
        let mut promoted = report.promoted.clone();
        promoted.sort();
        assert_eq!(promoted, vec![a.id, b.id]);
        assert_eq!(
            d.links().get(c.id).unwrap().unwrap().status,
            crate::links::LinkStatus::Tentative
        );
    }

    #[test]
    fn expiry_scan_deletes_expired_links() {
        use syd_types::SimClock;
        let net = Network::ideal();
        let dir = DirectoryServer::start(&net);
        let clock = SimClock::new();
        let clock_arc: Arc<dyn Clock> = Arc::new(clock.clone());
        let d = DeviceRuntime::new(&net, dir.addr(), UserId::new(1), "u", None, clock_arc).unwrap();
        d.links()
            .add_local(
                LinkSpec::subscription("e", vec![])
                    .with_expiry(syd_types::Timestamp::from_micros(1000)),
            )
            .unwrap();
        d.links()
            .add_local(LinkSpec::subscription("e2", vec![]))
            .unwrap();
        assert!(d.links().expire_scan().unwrap().is_empty());
        clock.advance(Duration::from_millis(2));
        let expired = d.links().expire_scan().unwrap();
        assert_eq!(expired.len(), 1);
        assert_eq!(d.links().count().unwrap(), 1); // unexpiring link remains
    }

    #[test]
    fn method_coupling_invokes_destinations() {
        let (_net, _dir, devices) = rig(2);
        let svc = ServiceName::new("calendar");
        let hits = Arc::new(Mutex::new(0u32));
        let hc = Arc::clone(&hits);
        devices[1]
            .register_service(
                &svc,
                "refresh",
                Arc::new(move |_ctx, _args| {
                    *hc.lock() += 1;
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        devices[0]
            .links()
            .couple_method(&svc, "update", devices[1].user(), &svc, "refresh")
            .unwrap();
        let outcomes = devices[0]
            .links()
            .invoke_coupled(&svc, "update", vec![])
            .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].1.is_ok());
        assert_eq!(*hits.lock(), 1);
        // Uncoupled methods invoke nothing.
        assert!(devices[0]
            .links()
            .invoke_coupled(&svc, "other", vec![])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn disconnect_isolates_device() {
        let (_net, _dir, devices) = rig(2);
        devices[1].disconnect().unwrap();
        assert!(!devices[1].is_connected());
        let err = devices[0]
            .engine()
            .invoke(
                devices[1].user(),
                &ServiceName::new("syd.ping"),
                "ping",
                vec![],
            )
            .unwrap_err();
        assert!(
            matches!(err, SydError::Disconnected(_) | SydError::Timeout(_)),
            "{err}"
        );
        devices[1].reconnect().unwrap();
        let out = devices[0]
            .engine()
            .invoke(
                devices[1].user(),
                &ServiceName::new("syd.ping"),
                "ping",
                vec![],
            )
            .unwrap();
        assert_eq!(out, Value::str("pong"));
    }

    use syd_types::{LinkId, Priority};
}
