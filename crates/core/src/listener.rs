//! SyDListener: service registration and authenticated dispatch (§3.1b).
//!
//! "SyDListener enables SyD device objects to publish services … as
//! listeners locally on the device and globally via directory services."
//! Locally, this is a registry from `(service, method)` to a handler
//! closure; globally, [`crate::device::DeviceRuntime`] publishes the
//! service names in the SyDDirectory.
//!
//! Every inbound request is authenticated first when the deployment runs
//! with security enabled (§5.4): the TEA credential blob is decrypted and
//! checked against the device's authorized-user table *before* the method
//! runs, and the authenticated user (not the claimed `caller` field) is
//! what the handler sees.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use syd_crypto::Authenticator;
use syd_net::RequestHandler;
use syd_telemetry::names;
use syd_telemetry::{Counter, Registry};
use syd_types::{NodeAddr, ServiceName, SydError, SydResult, UserId, Value};
use syd_wire::Request;

/// Context passed to every service method.
#[derive(Clone, Debug)]
pub struct InvokeCtx {
    /// The authenticated caller (or the unverified claimed caller when the
    /// deployment runs without authentication — see `authenticated`).
    pub caller: UserId,
    /// Network address the request arrived from.
    pub from: NodeAddr,
    /// True iff `caller` was cryptographically verified.
    pub authenticated: bool,
}

/// A registered service method.
pub type ServiceMethod = Arc<dyn Fn(&InvokeCtx, &[Value]) -> SydResult<Value> + Send + Sync>;

struct ListenerState {
    methods: HashMap<(String, String), ServiceMethod>,
}

/// Preregistered dispatch counters (see [`Listener::attach_metrics`]).
struct ListenerMetrics {
    dispatches: Counter,
    auth_failures: Counter,
}

/// The per-device service registry and request dispatcher.
pub struct Listener {
    state: RwLock<ListenerState>,
    auth: Option<Arc<Authenticator>>,
    metrics: RwLock<Option<ListenerMetrics>>,
}

impl Listener {
    /// Creates a listener. With `Some(authenticator)` every request must
    /// carry valid credentials; with `None` requests are trusted (the
    /// paper's prototype also ran in both modes during development).
    pub fn new(auth: Option<Arc<Authenticator>>) -> Listener {
        Listener {
            state: RwLock::new(ListenerState {
                methods: HashMap::new(),
            }),
            auth,
            metrics: RwLock::new(None),
        }
    }

    /// Attaches dispatch counters ("listener.dispatch",
    /// "listener.auth_failures") to `registry`. Handles are resolved once
    /// here, not per request.
    pub fn attach_metrics(&self, registry: &Registry) {
        *self.metrics.write() = Some(ListenerMetrics {
            dispatches: registry.counter(names::LISTENER_DISPATCH),
            auth_failures: registry.counter(names::LISTENER_AUTH_FAILURES),
        });
    }

    /// Registers (or replaces) a method under `service`.
    pub fn register(&self, service: &ServiceName, method: &str, handler: ServiceMethod) {
        self.state
            .write()
            .methods
            .insert((service.as_str().to_owned(), method.to_owned()), handler);
    }

    /// Unregisters a method.
    pub fn unregister(&self, service: &ServiceName, method: &str) {
        self.state
            .write()
            .methods
            .remove(&(service.as_str().to_owned(), method.to_owned()));
    }

    /// All registered `(service, method)` pairs, sorted.
    pub fn registered(&self) -> Vec<(String, String)> {
        let mut v: Vec<_> = self.state.read().methods.keys().cloned().collect();
        v.sort();
        v
    }

    /// Dispatches one request: authenticate, look up, invoke.
    pub fn dispatch(&self, from: NodeAddr, req: &Request) -> SydResult<Value> {
        if let Some(m) = &*self.metrics.read() {
            m.dispatches.inc();
        }
        let ctx = match &self.auth {
            Some(auth) => {
                let caller = match auth.verify(&req.credentials) {
                    Ok(caller) => caller,
                    Err(err) => {
                        if let Some(m) = &*self.metrics.read() {
                            m.auth_failures.inc();
                        }
                        return Err(err);
                    }
                };
                InvokeCtx {
                    caller,
                    from,
                    authenticated: true,
                }
            }
            None => InvokeCtx {
                caller: req.caller,
                from,
                authenticated: false,
            },
        };
        let handler = {
            let state = self.state.read();
            state
                .methods
                .get(&(req.service.as_str().to_owned(), req.method.clone()))
                .cloned()
        };
        match handler {
            Some(h) => h(&ctx, &req.args),
            None => Err(SydError::NoSuchService(
                req.service.clone(),
                req.method.clone(),
            )),
        }
    }
}

/// Adapter wiring a [`Listener`] into a network node.
pub struct ListenerHandler(pub Arc<Listener>);

impl RequestHandler for ListenerHandler {
    fn handle(&self, from: NodeAddr, request: Request) -> SydResult<Value> {
        self.0.dispatch(from, &request)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_crypto::Credentials;
    use syd_types::RequestId;

    fn request(service: &str, method: &str, credentials: Vec<u8>) -> Request {
        Request {
            id: RequestId::new(1),
            caller: UserId::new(42),
            target: UserId::default(),
            credentials,
            service: ServiceName::new(service),
            method: method.to_owned(),
            args: vec![Value::I64(5)].into(),
            trace: None,
        }
    }

    fn echo_method() -> ServiceMethod {
        Arc::new(|ctx: &InvokeCtx, args: &[Value]| {
            Ok(Value::list([
                Value::from(ctx.caller.raw()),
                Value::Bool(ctx.authenticated),
                args[0].clone(),
            ]))
        })
    }

    #[test]
    fn unauthenticated_mode_trusts_claimed_caller() {
        let listener = Listener::new(None);
        listener.register(&ServiceName::new("svc"), "echo", echo_method());
        let out = listener
            .dispatch(NodeAddr::new(9), &request("svc", "echo", vec![]))
            .unwrap();
        assert_eq!(
            out,
            Value::list([Value::I64(42), Value::Bool(false), Value::I64(5)])
        );
    }

    #[test]
    fn authenticated_mode_uses_verified_identity() {
        let auth = Arc::new(Authenticator::from_passphrase("k"));
        auth.table().authorize(UserId::new(7), "pw");
        let listener = Listener::new(Some(Arc::clone(&auth)));
        listener.register(&ServiceName::new("svc"), "echo", echo_method());

        let blob = auth.seal(&Credentials::new(UserId::new(7), "pw"), [1; 8]);
        let out = listener
            .dispatch(NodeAddr::new(9), &request("svc", "echo", blob))
            .unwrap();
        // The verified user (7) wins over the claimed caller (42).
        assert_eq!(
            out,
            Value::list([Value::I64(7), Value::Bool(true), Value::I64(5)])
        );
    }

    #[test]
    fn bad_credentials_rejected_before_dispatch() {
        let auth = Arc::new(Authenticator::from_passphrase("k"));
        auth.table().authorize(UserId::new(7), "pw");
        let listener = Listener::new(Some(Arc::clone(&auth)));
        let called = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let called_clone = Arc::clone(&called);
        listener.register(
            &ServiceName::new("svc"),
            "echo",
            Arc::new(move |_, _| {
                called_clone.store(true, std::sync::atomic::Ordering::SeqCst);
                Ok(Value::Null)
            }),
        );
        let err = listener
            .dispatch(NodeAddr::new(9), &request("svc", "echo", vec![1, 2, 3]))
            .unwrap_err();
        assert!(matches!(err, SydError::AuthFailed(_)), "{err}");
        assert!(!called.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn wrong_password_names_claimed_user() {
        let auth = Arc::new(Authenticator::from_passphrase("k"));
        auth.table().authorize(UserId::new(7), "pw");
        let listener = Listener::new(Some(Arc::clone(&auth)));
        let blob = auth.seal(&Credentials::new(UserId::new(7), "wrong"), [1; 8]);
        let err = listener
            .dispatch(NodeAddr::new(9), &request("svc", "echo", blob))
            .unwrap_err();
        assert_eq!(err, SydError::AuthFailed(UserId::new(7)));
    }

    #[test]
    fn missing_method_reported() {
        let listener = Listener::new(None);
        let err = listener
            .dispatch(NodeAddr::new(1), &request("svc", "nope", vec![]))
            .unwrap_err();
        assert!(matches!(err, SydError::NoSuchService(_, _)));
    }

    #[test]
    fn register_replace_unregister() {
        let listener = Listener::new(None);
        let svc = ServiceName::new("svc");
        listener.register(&svc, "m", Arc::new(|_, _| Ok(Value::I64(1))));
        listener.register(&svc, "m", Arc::new(|_, _| Ok(Value::I64(2))));
        listener.register(&svc, "n", Arc::new(|_, _| Ok(Value::I64(3))));
        assert_eq!(
            listener.registered(),
            vec![
                ("svc".to_owned(), "m".to_owned()),
                ("svc".to_owned(), "n".to_owned())
            ]
        );
        let out = listener
            .dispatch(NodeAddr::new(1), &request("svc", "m", vec![]))
            .unwrap();
        assert_eq!(out, Value::I64(2));
        listener.unregister(&svc, "m");
        assert!(listener
            .dispatch(NodeAddr::new(1), &request("svc", "m", vec![]))
            .is_err());
    }
}
