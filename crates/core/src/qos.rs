//! QoS support services (§2, §3.2).
//!
//! The paper assigns the middleware responsibility for quality of service:
//! the groupware provides "QoS support services for SyDApps" and "the
//! SyDMW is also responsible for QoS issues as required by the SyDApps"
//! (the mechanism is elaborated in the companion paper \[4\], *Supporting
//! QoS-Aware Transaction in the Middleware for SyD*). This module provides
//! the two services a QoS-aware SyDApp needs:
//!
//! * **Observation** — [`QosMonitor`] keeps per-`(user, service)` latency
//!   and failure statistics (EWMA latency, success rate, worst case), fed
//!   by [`QosMonitor::observe`]. Applications or the engine call it around
//!   invocations.
//! * **Admission control** — [`QosMonitor::admit`] answers "can this
//!   target plausibly meet this deadline?" from the observed EWMA, so a
//!   QoS-aware transaction can fail fast (or pick another replica/proxy)
//!   instead of burning its budget on a target that has been slow all day.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::RwLock;
use syd_types::{ServiceName, SydError, SydResult, UserId};

/// Statistics for one `(user, service)` target.
#[derive(Clone, Debug, PartialEq)]
pub struct TargetStats {
    /// Completed observations.
    pub calls: u64,
    /// Failed observations.
    pub failures: u64,
    /// Exponentially weighted moving average latency.
    pub ewma: Duration,
    /// Worst observed latency.
    pub worst: Duration,
}

impl TargetStats {
    fn new() -> Self {
        TargetStats {
            calls: 0,
            failures: 0,
            ewma: Duration::ZERO,
            worst: Duration::ZERO,
        }
    }

    /// Success ratio in `[0, 1]`; `1.0` when nothing was observed yet.
    pub fn success_rate(&self) -> f64 {
        if self.calls == 0 {
            1.0
        } else {
            1.0 - self.failures as f64 / self.calls as f64
        }
    }
}

/// EWMA smoothing factor (weight of the newest sample).
const ALPHA: f64 = 0.2;

/// Per-deployment QoS statistics and admission control.
#[derive(Default)]
pub struct QosMonitor {
    stats: RwLock<HashMap<(UserId, String), TargetStats>>,
}

impl QosMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed invocation.
    pub fn observe(&self, user: UserId, service: &ServiceName, latency: Duration, ok: bool) {
        let mut stats = self.stats.write();
        let entry = stats
            .entry((user, service.as_str().to_owned()))
            .or_insert_with(TargetStats::new);
        entry.calls += 1;
        if !ok {
            entry.failures += 1;
        }
        entry.worst = entry.worst.max(latency);
        entry.ewma = if entry.calls == 1 {
            latency
        } else {
            let blended = entry.ewma.as_secs_f64() * (1.0 - ALPHA) + latency.as_secs_f64() * ALPHA;
            Duration::from_secs_f64(blended)
        };
    }

    /// Statistics for one target, if observed.
    pub fn stats_for(&self, user: UserId, service: &ServiceName) -> Option<TargetStats> {
        self.stats
            .read()
            .get(&(user, service.as_str().to_owned()))
            .cloned()
    }

    /// All observed targets, sorted by EWMA (slowest first) — the
    /// "QoS dashboard" view.
    pub fn report(&self) -> Vec<(UserId, String, TargetStats)> {
        let mut out: Vec<(UserId, String, TargetStats)> = self
            .stats
            .read()
            .iter()
            .map(|((user, service), stats)| (*user, service.clone(), stats.clone()))
            .collect();
        out.sort_by_key(|entry| std::cmp::Reverse(entry.2.ewma));
        out
    }

    /// Admission control: succeeds iff the target's EWMA (with a 2×
    /// safety margin) fits in `deadline`. Unobserved targets are admitted
    /// optimistically — there is nothing to hold against them yet.
    pub fn admit(&self, user: UserId, service: &ServiceName, deadline: Duration) -> SydResult<()> {
        match self.stats_for(user, service) {
            None => Ok(()),
            Some(stats) => {
                let projected = stats.ewma * 2;
                if projected <= deadline {
                    Ok(())
                } else {
                    Err(SydError::App(format!(
                        "QoS admission refused: {user}/{service} EWMA {:?} cannot meet deadline {:?}",
                        stats.ewma, deadline
                    )))
                }
            }
        }
    }

    /// Forgets a target's history (e.g. after it moved to a new device).
    pub fn reset(&self, user: UserId, service: &ServiceName) {
        self.stats
            .write()
            .remove(&(user, service.as_str().to_owned()));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn svc() -> ServiceName {
        ServiceName::new("calendar")
    }

    #[test]
    fn observations_accumulate() {
        let qos = QosMonitor::new();
        let user = UserId::new(1);
        qos.observe(user, &svc(), Duration::from_millis(10), true);
        qos.observe(user, &svc(), Duration::from_millis(20), false);
        let stats = qos.stats_for(user, &svc()).unwrap();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.worst, Duration::from_millis(20));
        assert!((stats.success_rate() - 0.5).abs() < 1e-9);
        // EWMA between the two samples, closer to the first.
        assert!(stats.ewma > Duration::from_millis(10));
        assert!(stats.ewma < Duration::from_millis(20));
    }

    #[test]
    fn ewma_converges_to_new_regime() {
        let qos = QosMonitor::new();
        let user = UserId::new(1);
        for _ in 0..5 {
            qos.observe(user, &svc(), Duration::from_millis(5), true);
        }
        for _ in 0..60 {
            qos.observe(user, &svc(), Duration::from_millis(50), true);
        }
        let stats = qos.stats_for(user, &svc()).unwrap();
        assert!(
            stats.ewma > Duration::from_millis(45),
            "EWMA should track the new regime, got {:?}",
            stats.ewma
        );
    }

    #[test]
    fn admission_control() {
        let qos = QosMonitor::new();
        let user = UserId::new(1);
        // Unknown targets admitted.
        qos.admit(user, &svc(), Duration::from_millis(1)).unwrap();
        for _ in 0..10 {
            qos.observe(user, &svc(), Duration::from_millis(30), true);
        }
        // 2×30ms > 40ms → refused.
        assert!(qos.admit(user, &svc(), Duration::from_millis(40)).is_err());
        // 2×30ms < 100ms → admitted.
        qos.admit(user, &svc(), Duration::from_millis(100)).unwrap();
        // History can be reset.
        qos.reset(user, &svc());
        qos.admit(user, &svc(), Duration::from_millis(1)).unwrap();
    }

    #[test]
    fn report_sorts_slowest_first() {
        let qos = QosMonitor::new();
        qos.observe(UserId::new(1), &svc(), Duration::from_millis(5), true);
        qos.observe(UserId::new(2), &svc(), Duration::from_millis(50), true);
        qos.observe(UserId::new(3), &svc(), Duration::from_millis(20), true);
        let report = qos.report();
        let order: Vec<u64> = report.iter().map(|(u, _, _)| u.raw()).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn targets_are_independent() {
        let qos = QosMonitor::new();
        let mail = ServiceName::new("mailbox");
        qos.observe(UserId::new(1), &svc(), Duration::from_millis(5), true);
        qos.observe(UserId::new(1), &mail, Duration::from_millis(99), false);
        assert_eq!(qos.stats_for(UserId::new(1), &svc()).unwrap().failures, 0);
        assert_eq!(qos.stats_for(UserId::new(1), &mail).unwrap().failures, 1);
    }
}
