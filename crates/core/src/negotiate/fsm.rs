//! The pure §4.3 state-transition core.
//!
//! Every decision the negotiation protocol makes — how a participant
//! answers a mark, which yes-voters a coordinator commits and which it
//! aborts, whether the final outcome satisfies the constraint — lives
//! here as side-effect-free functions over plain data. The runtime
//! ([`super::Negotiator`] and the `mark`/`commit`/`abort` kernel services
//! in [`crate::device`]) and the `syd-model` exhaustive model checker
//! both call these functions, so the model can never drift from the
//! implementation it claims to verify: there is only one implementation.

use syd_types::{SydResult, Value};

use crate::links::Constraint;

/// A participant's answer to a mark request (§4.3 "Mark and Lock").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// Lock acquired and the entity handler prepared the change.
    Yes,
    /// The entity lock is held by another negotiation; nothing was
    /// locked, nothing needs releasing. Transient: the coordinator may
    /// retry after the other negotiation finishes.
    NoLockBusy,
    /// The lock was acquired but the entity handler refused the change;
    /// the lock is released before the vote is sent. Durable.
    NoPrepare,
}

impl Vote {
    /// Whether the participant still holds the entity lock after this
    /// vote (only a yes-voter carries its lock into phase 2).
    pub fn holds_lock(self) -> bool {
        self == Vote::Yes
    }

    /// Whether answering requires releasing a lock acquired during the
    /// mark (a failed prepare unlocks before voting).
    pub fn releases_lock(self) -> bool {
        self == Vote::NoPrepare
    }

    /// Wire encoding of the vote, as returned by the `syd.link/mark`
    /// service: `true`, `false`, or the distinguished `"lock-busy"`.
    pub fn wire_reply(self) -> Value {
        match self {
            Vote::Yes => Value::Bool(true),
            Vote::NoPrepare => Value::Bool(false),
            Vote::NoLockBusy => Value::str("lock-busy"),
        }
    }
}

/// Coordinator-side classification of one mark reply. A transport error
/// (lost request or lost reply) is indistinguishable from a decline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyClass {
    /// The participant voted yes and holds its entity lock.
    Yes,
    /// The participant declined because of a transient lock conflict.
    DeclinedBusy,
    /// The participant declined durably, or the RPC failed.
    Declined,
}

/// Classifies a mark RPC outcome the way [`super::Negotiator`] tallies
/// votes — the inverse of [`Vote::wire_reply`] plus the lost-message
/// case.
pub fn classify_reply(reply: &SydResult<Value>) -> ReplyClass {
    match reply {
        Ok(Value::Bool(true)) => ReplyClass::Yes,
        Ok(Value::Str(s)) if s == "lock-busy" => ReplyClass::DeclinedBusy,
        _ => ReplyClass::Declined,
    }
}

/// Participant-side mark transition over an abstract entity lock.
///
/// `holder` is the session currently holding the entity's lock (`None` =
/// free); the lock is re-entrant for `session` itself, exactly like
/// `syd-store`'s lock table. Returns the vote and the holder after the
/// transition. `prepare_ok` is the entity handler's verdict (a device
/// with no handler behaves as `prepare_ok = true`: pure mutual-exclusion
/// semantics).
pub fn participant_mark(
    holder: Option<u64>,
    session: u64,
    prepare_ok: bool,
) -> (Vote, Option<u64>) {
    match holder {
        Some(other) if other != session => (Vote::NoLockBusy, holder),
        previous => {
            if prepare_ok {
                (Vote::Yes, Some(session))
            } else if previous.is_some() {
                // Re-entrant acquisition: releasing the mark's hold pops
                // one level; the session still holds the lock underneath.
                (Vote::NoPrepare, previous)
            } else {
                (Vote::NoPrepare, None)
            }
        }
    }
}

/// Participant-side commit/abort transition: both release the entity
/// lock if (and only if) `session` holds it. Commit and abort are
/// idempotent — a duplicate delivery after release is a no-op.
pub fn participant_release(holder: Option<u64>, session: u64) -> Option<u64> {
    match holder {
        Some(s) if s == session => None,
        other => other,
    }
}

/// The coordinator's phase-2 plan, computed from the mark votes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The constraint held over the votes (and no contention block).
    pub satisfied: bool,
    /// Indices (into the participant list) to commit, in participant
    /// order.
    pub commit: Vec<usize>,
    /// Yes-voter indices to abort (xor overflow, constraint failure, or
    /// a contention block).
    pub abort: Vec<usize>,
    /// Why the yes-voters in `abort` are aborted — journaled with each
    /// abort fan-out.
    pub abort_reason: &'static str,
}

/// §4.3 coordinator decision: evaluates `constraint` over the yes-voter
/// indices and splits them into commit and abort sets.
///
/// For `Constraint::Exactly(k)` with more than `k` yes votes, the first
/// `k` yes-voters (in participant order) commit and the overflow aborts
/// — see [`super::Negotiator::negotiate`] for why the strict paper
/// reading is relaxed. When `abort_on_contention` is set and any decline
/// was a transient lock conflict, nothing commits (committing under
/// crossed locks is how two racing coordinators each end up holding part
/// of the other's entity set).
pub fn decide(
    constraint: Constraint,
    yes: &[usize],
    participants: usize,
    contended: bool,
    abort_on_contention: bool,
) -> Decision {
    let yes_count = yes.len() as u32;
    let (constraint_ok, commit_count) = match constraint {
        Constraint::And => (yes_count == participants as u32, yes_count),
        Constraint::AtLeast(k) => (yes_count >= k, yes_count),
        Constraint::Exactly(k) => (yes_count >= k, k.min(yes_count)),
    };
    let blocked = abort_on_contention && contended;
    let satisfied = constraint_ok && !blocked;
    let (commit, abort) = if satisfied {
        (
            yes.iter().copied().take(commit_count as usize).collect(),
            yes.iter().copied().skip(commit_count as usize).collect(),
        )
    } else {
        (Vec::new(), yes.to_vec())
    };
    let abort_reason = if blocked {
        "lock-contention"
    } else if satisfied {
        "xor-overflow"
    } else {
        "constraint-failed"
    };
    Decision {
        satisfied,
        commit,
        abort,
        abort_reason,
    }
}

/// Re-evaluates the constraint over what *actually* committed: a commit
/// RPC that failed (and exhausted its retry) moved a yes-voter out of
/// the committed set, and a constraint that held over the votes may no
/// longer hold over what changed. Reporting satisfaction from the vote
/// count alone would claim an atomic group change that did not happen.
pub fn outcome_satisfied(
    constraint: Constraint,
    provisionally_satisfied: bool,
    committed: usize,
    participants: usize,
) -> bool {
    provisionally_satisfied
        && committed != 0
        && match constraint {
            Constraint::And => committed == participants,
            Constraint::AtLeast(k) => committed >= k as usize,
            Constraint::Exactly(k) => committed == k as usize,
        }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_types::SydError;

    #[test]
    fn vote_wire_round_trip() {
        for vote in [Vote::Yes, Vote::NoPrepare, Vote::NoLockBusy] {
            let class = classify_reply(&Ok(vote.wire_reply()));
            match vote {
                Vote::Yes => assert_eq!(class, ReplyClass::Yes),
                Vote::NoLockBusy => assert_eq!(class, ReplyClass::DeclinedBusy),
                Vote::NoPrepare => assert_eq!(class, ReplyClass::Declined),
            }
        }
        // A lost message classifies as a durable decline.
        assert_eq!(
            classify_reply(&Err(SydError::Timeout(1.into()))),
            ReplyClass::Declined
        );
    }

    #[test]
    fn mark_respects_foreign_lock() {
        let (vote, holder) = participant_mark(Some(7), 9, true);
        assert_eq!(vote, Vote::NoLockBusy);
        assert_eq!(holder, Some(7));
        assert!(!vote.holds_lock());
        assert!(!vote.releases_lock());
    }

    #[test]
    fn mark_acquires_free_lock() {
        let (vote, holder) = participant_mark(None, 9, true);
        assert_eq!(vote, Vote::Yes);
        assert_eq!(holder, Some(9));
        assert!(vote.holds_lock());
    }

    #[test]
    fn mark_prepare_failure_releases() {
        let (vote, holder) = participant_mark(None, 9, false);
        assert_eq!(vote, Vote::NoPrepare);
        assert_eq!(holder, None);
        assert!(vote.releases_lock());
        // Re-entrant: the session keeps its pre-existing hold.
        let (vote, holder) = participant_mark(Some(9), 9, false);
        assert_eq!(vote, Vote::NoPrepare);
        assert_eq!(holder, Some(9));
    }

    #[test]
    fn release_is_owner_only_and_idempotent() {
        assert_eq!(participant_release(Some(9), 9), None);
        assert_eq!(participant_release(Some(7), 9), Some(7));
        assert_eq!(participant_release(None, 9), None);
    }

    #[test]
    fn decide_and_all_or_nothing() {
        let d = decide(Constraint::And, &[0, 1, 2], 3, false, false);
        assert!(d.satisfied);
        assert_eq!(d.commit, vec![0, 1, 2]);
        assert!(d.abort.is_empty());

        let d = decide(Constraint::And, &[0, 2], 3, false, false);
        assert!(!d.satisfied);
        assert!(d.commit.is_empty());
        assert_eq!(d.abort, vec![0, 2]);
        assert_eq!(d.abort_reason, "constraint-failed");
    }

    #[test]
    fn decide_xor_overflow_commits_first_k() {
        let d = decide(Constraint::Exactly(1), &[0, 1, 2], 3, false, false);
        assert!(d.satisfied);
        assert_eq!(d.commit, vec![0]);
        assert_eq!(d.abort, vec![1, 2]);
        assert_eq!(d.abort_reason, "xor-overflow");
    }

    #[test]
    fn decide_contention_blocks_greedy_grab() {
        let d = decide(Constraint::AtLeast(0), &[0, 1], 3, true, true);
        assert!(!d.satisfied);
        assert!(d.commit.is_empty());
        assert_eq!(d.abort, vec![0, 1]);
        assert_eq!(d.abort_reason, "lock-contention");
        // Same votes without contention safety commit greedily.
        let d = decide(Constraint::AtLeast(0), &[0, 1], 3, true, false);
        assert!(d.satisfied);
        assert_eq!(d.commit, vec![0, 1]);
    }

    #[test]
    fn outcome_downgrades_on_failed_commits() {
        assert!(outcome_satisfied(Constraint::And, true, 3, 3));
        assert!(!outcome_satisfied(Constraint::And, true, 2, 3));
        assert!(!outcome_satisfied(Constraint::AtLeast(2), true, 1, 3));
        assert!(outcome_satisfied(Constraint::AtLeast(2), true, 2, 3));
        assert!(!outcome_satisfied(Constraint::Exactly(1), true, 0, 3));
        assert!(!outcome_satisfied(Constraint::Exactly(1), true, 2, 3));
        // Never satisfied retroactively.
        assert!(!outcome_satisfied(Constraint::And, false, 3, 3));
    }
}
