//! Deployment environment: transport + directory + authenticator + clock.
//!
//! `SydEnv` plays the role of the paper's deployment scripts: it stands up
//! the network substrate (the simulated wireless LAN by default, loopback
//! TCP via [`SydEnv::new_on`]), starts the name server (SyDDirectory),
//! holds the deployment's shared TEA key, and mints devices and proxies.
//! It is the entry point every example and benchmark uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::RngCore;
use syd_crypto::{Authenticator, Credentials};
use syd_net::{NetConfig, Network, Node, Transport};
use syd_types::{Clock, NodeAddr, SydResult, SystemClock, UserId};

use crate::device::DeviceRuntime;
use crate::directory::{DirectoryClient, DirectoryServer};
use crate::proxy::ProxyHost;

/// A running SyD deployment.
pub struct SydEnv {
    transport: Arc<dyn Transport>,
    /// Set when the transport is the simulated network — fault models and
    /// wire statistics ([`SydEnv::network`]) only exist there.
    sim: Option<Network>,
    directory: DirectoryServer,
    auth: Option<Arc<Authenticator>>,
    clock: Arc<dyn Clock>,
    next_user: AtomicU64,
}

impl SydEnv {
    /// Starts a deployment with §5.4 authentication enabled, deriving the
    /// shared TEA key from `passphrase`.
    pub fn new(cfg: NetConfig, passphrase: &str) -> SydEnv {
        Self::build(
            cfg,
            Some(Arc::new(Authenticator::from_passphrase(passphrase))),
        )
    }

    /// Starts a deployment without authentication (every request trusted).
    pub fn new_insecure(cfg: NetConfig) -> SydEnv {
        Self::build(cfg, None)
    }

    fn build(cfg: NetConfig, auth: Option<Arc<Authenticator>>) -> SydEnv {
        let network = Network::new(cfg);
        let directory = DirectoryServer::start(&network);
        SydEnv {
            transport: Arc::new(network.clone()),
            sim: Some(network),
            directory,
            auth,
            clock: Arc::new(SystemClock::new()),
            next_user: AtomicU64::new(1),
        }
    }

    /// Starts a deployment on an arbitrary transport backend — the same
    /// environment the sim constructors build, but with the directory and
    /// every subsequent device speaking through `transport` (e.g. a
    /// [`syd_net::FramedTcpTransport`] on loopback). Pass `passphrase`
    /// `Some(..)` for §5.4 authentication.
    pub fn new_on(transport: Arc<dyn Transport>, passphrase: Option<&str>) -> SydResult<SydEnv> {
        let directory = DirectoryServer::start_on(&*transport)?;
        Ok(SydEnv {
            transport,
            sim: None,
            directory,
            auth: passphrase.map(|p| Arc::new(Authenticator::from_passphrase(p))),
            clock: Arc::new(SystemClock::new()),
            next_user: AtomicU64::new(1),
        })
    }

    /// Replaces the deployment clock (tests use a
    /// [`syd_types::SimClock`]). Devices created afterwards use it.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> SydEnv {
        self.clock = clock;
        self
    }

    /// The transport substrate devices are minted on.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The simulated network.
    ///
    /// # Panics
    ///
    /// Panics when the deployment runs on a non-simulated transport (see
    /// [`SydEnv::new_on`]) — fault injection and router statistics are
    /// sim-only concepts; check [`syd_net::Transport::kind`] first.
    pub fn network(&self) -> &Network {
        #[allow(clippy::expect_used)] // documented panic contract (see above)
        self.sim
            .as_ref()
            .expect("SydEnv::network(): deployment runs on a real transport, not the sim")
    }

    /// The directory's address.
    pub fn dir_addr(&self) -> NodeAddr {
        self.directory.addr()
    }

    /// The running directory server — benchmarks and diagnostics read its
    /// request counters (`dir.lookups`, `dir.batch_lookups`, …) to verify
    /// round-trip budgets from the server's side, not wall clock.
    pub fn directory(&self) -> &DirectoryServer {
        &self.directory
    }

    /// The deployment clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The shared device runtime multiplexing this deployment's devices
    /// (created on first use; meaningful when [`syd_net::shared_runtime_enabled`]
    /// is on). Fleet tooling uses it to enable scoped metrics before a
    /// mass spawn and to read reactor/pool occupancy afterwards.
    pub fn runtime(&self) -> syd_net::SharedRuntime {
        syd_net::runtime_for(&*self.transport)
    }

    /// The deployment authenticator, when security is on.
    pub fn authenticator(&self) -> Option<&Arc<Authenticator>> {
        self.auth.as_ref()
    }

    /// Creates a device for a new user named `name` with `password`,
    /// registering the user in the directory and (when security is on)
    /// the authorized-user table, and stamping the device's outgoing
    /// requests with sealed credentials.
    pub fn device(&self, name: &str, password: &str) -> SydResult<DeviceRuntime> {
        let user = UserId::new(self.next_user.fetch_add(1, Ordering::Relaxed));
        let device = DeviceRuntime::new(
            &*self.transport,
            self.directory.addr(),
            user,
            name,
            self.auth.clone(),
            Arc::clone(&self.clock),
        )?;
        if let Some(auth) = &self.auth {
            auth.table().authorize(user, password);
            let mut iv = [0u8; 8];
            rand::thread_rng().fill_bytes(&mut iv);
            let blob = auth.seal(&Credentials::new(user, password), iv);
            device.node().set_identity(user, blob);
        } else {
            device.node().set_identity(user, Vec::new());
        }
        Ok(device)
    }

    /// Creates a proxy host able to stand in for disconnected devices
    /// (§5.2). Proxies authenticate their outgoing traffic as the
    /// dedicated proxy user.
    pub fn proxy(&self, name: &str, password: &str) -> SydResult<ProxyHost> {
        let user = UserId::new(self.next_user.fetch_add(1, Ordering::Relaxed));
        let proxy = ProxyHost::new(
            &*self.transport,
            self.directory.addr(),
            user,
            name,
            self.auth.clone(),
            Arc::clone(&self.clock),
        )?;
        if let Some(auth) = &self.auth {
            auth.table().authorize(user, password);
            let mut iv = [0u8; 8];
            rand::thread_rng().fill_bytes(&mut iv);
            let blob = auth.seal(&Credentials::new(user, password), iv);
            proxy.node().set_identity(user, blob);
        } else {
            proxy.node().set_identity(user, Vec::new());
        }
        Ok(proxy)
    }

    /// A fresh directory client on its own node (for tools/tests that are
    /// not devices).
    pub fn directory_client(&self) -> DirectoryClient {
        #[allow(clippy::expect_used)] // infallible on the sim; tool/test convenience
        let node = Node::spawn_on(&*self.transport).expect("transport cannot open endpoint");
        DirectoryClient::new(node, self.directory.addr())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_types::{ServiceName, Value};

    #[test]
    fn secure_env_round_trip() {
        let env = SydEnv::new(NetConfig::ideal(), "deployment");
        let a = env.device("alice", "pw-a").unwrap();
        let b = env.device("bob", "pw-b").unwrap();
        // Authenticated kernel call works.
        let out = a
            .engine()
            .invoke(b.user(), &ServiceName::new("syd.ping"), "ping", vec![])
            .unwrap();
        assert_eq!(out, Value::str("pong"));
    }

    #[test]
    fn forged_identity_is_rejected() {
        let env = SydEnv::new(NetConfig::ideal(), "deployment");
        let a = env.device("alice", "pw-a").unwrap();
        let b = env.device("bob", "pw-b").unwrap();
        // Tamper with a's credentials.
        a.node().set_identity(a.user(), vec![0xBA, 0xD1]);
        let err = a
            .engine()
            .invoke(b.user(), &ServiceName::new("syd.ping"), "ping", vec![])
            .unwrap_err();
        assert!(matches!(err, syd_types::SydError::AuthFailed(_)), "{err}");
    }

    #[test]
    fn insecure_env_trusts_callers() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let a = env.device("alice", "").unwrap();
        let b = env.device("bob", "").unwrap();
        let out = a
            .engine()
            .invoke(b.user(), &ServiceName::new("syd.ping"), "ping", vec![])
            .unwrap();
        assert_eq!(out, Value::str("pong"));
    }

    #[test]
    fn env_on_tcp_transport_round_trips() {
        // The whole deployment — directory, devices, authenticated RPC —
        // over real loopback sockets instead of the sim.
        let transport: Arc<dyn Transport> = Arc::new(syd_net::FramedTcpTransport::loopback());
        let env = SydEnv::new_on(transport, Some("deployment")).unwrap();
        let a = env.device("alice", "pw-a").unwrap();
        let b = env.device("bob", "pw-b").unwrap();
        let out = a
            .engine()
            .invoke(b.user(), &ServiceName::new("syd.ping"), "ping", vec![])
            .unwrap();
        assert_eq!(out, Value::str("pong"));
        assert_eq!(env.transport().kind(), "tcp");
    }

    #[test]
    fn users_get_distinct_ids_and_names() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let a = env.device("alice", "").unwrap();
        let b = env.device("bob", "").unwrap();
        assert_ne!(a.user(), b.user());
        let dirc = env.directory_client();
        assert_eq!(dirc.lookup_name("alice").unwrap(), a.user());
        assert_eq!(dirc.lookup_name("bob").unwrap(), b.user());
        assert!(env.device("alice", "").is_err(), "duplicate name");
    }
}
