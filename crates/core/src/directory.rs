//! SyDDirectory: the name server (§3.1a, §5.2).
//!
//! The directory provides "user/group/service publishing, management, and
//! lookup services … also supports intelligent proxy maintenance for
//! users/devices". It runs as an ordinary SyD node serving the `syd.dir`
//! service; every other module reaches it through [`DirectoryClient`].
//!
//! Proxy-aware lookup is the heart of §5.2: while a user's device is
//! connected, `lookup` returns the device address; when it is disconnected
//! and a proxy is registered, `lookup` transparently returns the proxy
//! address, so "the proxy and the SyD object act as a single entity for an
//! outsider".

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use syd_net::{Network, Node, RequestHandler, Transport};
use syd_telemetry::names;
use syd_telemetry::{Counter, Registry};
use syd_types::{GroupId, NodeAddr, ServiceName, SydError, SydResult, UserId, Value};
use syd_wire::Request;

/// The directory's service name.
pub fn dir_service() -> ServiceName {
    ServiceName::new("syd.dir")
}

/// Everything the directory knows about one user/device.
#[derive(Clone, Debug, PartialEq)]
pub struct UserRecord {
    /// The user.
    pub user: UserId,
    /// Human-readable name ("phil").
    pub name: String,
    /// Device address.
    pub addr: NodeAddr,
    /// Registered proxy address, if any.
    pub proxy: Option<NodeAddr>,
    /// Whether the primary device is currently connected.
    pub connected: bool,
    /// Services this user has published.
    pub services: Vec<String>,
}

/// A dynamic group (§2: "formation and maintenance of dynamic groups").
#[derive(Clone, Debug, PartialEq)]
pub struct GroupInfo {
    /// Group id.
    pub id: GroupId,
    /// Group name ("biology-faculty").
    pub name: String,
    /// Current members.
    pub members: Vec<UserId>,
}

#[derive(Default)]
struct DirState {
    users: HashMap<UserId, UserRecord>,
    by_name: HashMap<String, UserId>,
    groups: HashMap<GroupId, GroupInfo>,
    group_by_name: HashMap<String, GroupId>,
    next_group: u64,
}

/// Preregistered round-trip counters for the lookup hot path. They count
/// *served requests*, so a benchmark can verify "a cold group invoke over
/// n members costs one directory round trip" from the server's own
/// telemetry rather than from wall clock.
struct DirMetrics {
    /// `dir.lookups` — single `lookup` requests served.
    lookups: Counter,
    /// `dir.batch_lookups` — `lookup_many` requests served.
    batch_lookups: Counter,
    /// `dir.batch_lookup_users` — users resolved across all
    /// `lookup_many` requests (batching efficiency = users / requests).
    batch_lookup_users: Counter,
}

impl DirMetrics {
    fn preregister(registry: &Registry) -> Self {
        Self {
            lookups: registry.counter(names::DIR_LOOKUPS),
            batch_lookups: registry.counter(names::DIR_BATCH_LOOKUPS),
            batch_lookup_users: registry.counter(names::DIR_BATCH_LOOKUP_USERS),
        }
    }
}

/// The directory server: state plus the node serving `syd.dir`.
pub struct DirectoryServer {
    node: Node,
    state: Arc<RwLock<DirState>>,
}

impl DirectoryServer {
    /// Starts a directory on the simulated `net`. Infallible convenience
    /// for the single-process case; see [`DirectoryServer::start_on`].
    pub fn start(net: &Network) -> DirectoryServer {
        #[allow(clippy::expect_used)] // sim listen allocates an address; it cannot fail
        Self::start_on(net).expect("simulated transport cannot fail to listen")
    }

    /// Starts a directory on any transport backend (simulated or TCP).
    pub fn start_on(transport: &dyn Transport) -> SydResult<DirectoryServer> {
        let node = Node::spawn_on(transport)?;
        let state = Arc::new(RwLock::new(DirState::default()));
        let handler_state = Arc::clone(&state);
        let metrics = DirMetrics::preregister(node.metrics());
        node.set_handler(
            Arc::new(move |_from, req: Request| serve(&handler_state, &metrics, &req))
                as Arc<dyn RequestHandler>,
        );
        Ok(DirectoryServer { node, state })
    }

    /// Address other nodes use to reach the directory.
    pub fn addr(&self) -> NodeAddr {
        self.node.addr()
    }

    /// Number of registered users (diagnostics).
    pub fn user_count(&self) -> usize {
        self.state.read().users.len()
    }

    /// The directory node's metrics registry (`dir.lookups`,
    /// `dir.batch_lookups`, `dir.batch_lookup_users`, plus the node's
    /// own RPC metrics).
    pub fn metrics(&self) -> &Arc<Registry> {
        self.node.metrics()
    }
}

fn arg(req: &Request, i: usize) -> SydResult<&Value> {
    req.args
        .get(i)
        .ok_or_else(|| SydError::Protocol(format!("{} needs arg {i}", req.method)))
}

fn user_record_to_value(rec: &UserRecord) -> Value {
    Value::map([
        ("user", Value::from(rec.user.raw())),
        ("name", Value::str(rec.name.clone())),
        ("addr", Value::from(rec.addr.raw())),
        (
            "proxy",
            rec.proxy.map_or(Value::Null, |p| Value::from(p.raw())),
        ),
        ("connected", Value::Bool(rec.connected)),
        (
            "services",
            Value::list(rec.services.iter().map(|s| Value::str(s.clone()))),
        ),
    ])
}

/// Proxy-aware address resolution (§5.2): connected → device address,
/// disconnected with a proxy → proxy address, otherwise the device
/// address as-is (the caller will observe the disconnect).
fn resolve_record(rec: &UserRecord) -> (NodeAddr, bool) {
    if rec.connected {
        (rec.addr, false)
    } else if let Some(proxy) = rec.proxy {
        (proxy, true)
    } else {
        (rec.addr, false)
    }
}

fn serve(state: &RwLock<DirState>, metrics: &DirMetrics, req: &Request) -> SydResult<Value> {
    match req.method.as_str() {
        // register(user, name, addr) -> null
        "register" => {
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let name = arg(req, 1)?.as_str()?.to_owned();
            let addr = NodeAddr::new(arg(req, 2)?.as_i64()? as u64);
            let mut s = state.write();
            if let Some(&existing) = s.by_name.get(&name) {
                if existing != user {
                    return Err(SydError::App(format!("name `{name}` is taken")));
                }
            }
            s.by_name.insert(name.clone(), user);
            s.users.insert(
                user,
                UserRecord {
                    user,
                    name,
                    addr,
                    proxy: None,
                    connected: true,
                    services: Vec::new(),
                },
            );
            Ok(Value::Null)
        }
        // publish(user, service) -> null
        "publish" => {
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let service = arg(req, 1)?.as_str()?.to_owned();
            let mut s = state.write();
            let rec = s
                .users
                .get_mut(&user)
                .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
            if !rec.services.contains(&service) {
                rec.services.push(service);
            }
            Ok(Value::Null)
        }
        // lookup(user) -> {addr, is_proxy}
        "lookup" => {
            metrics.lookups.inc();
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let s = state.read();
            let rec = s
                .users
                .get(&user)
                .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
            let (addr, is_proxy) = resolve_record(rec);
            Ok(Value::map([
                ("addr", Value::from(addr.raw())),
                ("is_proxy", Value::Bool(is_proxy)),
            ]))
        }
        // lookup_many([user ids]) -> [{addr, is_proxy} | null, ...]
        //
        // One round trip resolves a whole group. The reply is aligned
        // with the input: an unregistered user yields `null` in its slot
        // instead of failing the batch, so one unknown member can never
        // poison its siblings' resolutions.
        "lookup_many" => {
            metrics.batch_lookups.inc();
            let users = arg(req, 0)?.as_list()?;
            metrics.batch_lookup_users.add(users.len() as u64);
            let s = state.read();
            let entries = users
                .iter()
                .map(|u| {
                    let user = UserId::new(u.as_i64()? as u64);
                    Ok(match s.users.get(&user) {
                        Some(rec) => {
                            let (addr, is_proxy) = resolve_record(rec);
                            Value::map([
                                ("addr", Value::from(addr.raw())),
                                ("is_proxy", Value::Bool(is_proxy)),
                            ])
                        }
                        None => Value::Null,
                    })
                })
                .collect::<SydResult<Vec<Value>>>()?;
            Ok(Value::list(entries))
        }
        // lookup_name(name) -> user id
        "lookup_name" => {
            let name = arg(req, 0)?.as_str()?;
            let s = state.read();
            s.by_name
                .get(name)
                .map(|u| Value::from(u.raw()))
                .ok_or_else(|| SydError::NotRegistered(name.to_owned()))
        }
        // describe(user) -> full record
        "describe" => {
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let s = state.read();
            s.users
                .get(&user)
                .map(user_record_to_value)
                .ok_or_else(|| SydError::NotRegistered(user.to_string()))
        }
        // set_connected(user, bool) -> null
        "set_connected" => {
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let connected = arg(req, 1)?.as_bool()?;
            let mut s = state.write();
            let rec = s
                .users
                .get_mut(&user)
                .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
            rec.connected = connected;
            Ok(Value::Null)
        }
        // register_proxy(user, proxy_addr) -> null
        "register_proxy" => {
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let proxy = NodeAddr::new(arg(req, 1)?.as_i64()? as u64);
            let mut s = state.write();
            let rec = s
                .users
                .get_mut(&user)
                .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
            rec.proxy = Some(proxy);
            Ok(Value::Null)
        }
        // clear_proxy(user) -> null
        "clear_proxy" => {
            let user = UserId::new(arg(req, 0)?.as_i64()? as u64);
            let mut s = state.write();
            let rec = s
                .users
                .get_mut(&user)
                .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
            rec.proxy = None;
            Ok(Value::Null)
        }
        // create_group(name) -> group id
        "create_group" => {
            let name = arg(req, 0)?.as_str()?.to_owned();
            let mut s = state.write();
            if s.group_by_name.contains_key(&name) {
                return Err(SydError::App(format!("group `{name}` already exists")));
            }
            s.next_group += 1;
            let id = GroupId::new(s.next_group);
            s.group_by_name.insert(name.clone(), id);
            s.groups.insert(
                id,
                GroupInfo {
                    id,
                    name,
                    members: Vec::new(),
                },
            );
            Ok(Value::from(id.raw()))
        }
        // group_add(group, user) / group_remove(group, user) -> null
        "group_add" | "group_remove" => {
            let group = GroupId::new(arg(req, 0)?.as_i64()? as u64);
            let user = UserId::new(arg(req, 1)?.as_i64()? as u64);
            let mut s = state.write();
            if !s.users.contains_key(&user) {
                return Err(SydError::NotRegistered(user.to_string()));
            }
            let info = s
                .groups
                .get_mut(&group)
                .ok_or_else(|| SydError::NotRegistered(group.to_string()))?;
            if req.method == "group_add" {
                if !info.members.contains(&user) {
                    info.members.push(user);
                }
            } else {
                info.members.retain(|&m| m != user);
            }
            Ok(Value::Null)
        }
        // group_members(group) -> [user ids]
        "group_members" => {
            let group = GroupId::new(arg(req, 0)?.as_i64()? as u64);
            let s = state.read();
            let info = s
                .groups
                .get(&group)
                .ok_or_else(|| SydError::NotRegistered(group.to_string()))?;
            Ok(Value::list(
                info.members.iter().map(|u| Value::from(u.raw())),
            ))
        }
        // group_by_name(name) -> group id
        "group_by_name" => {
            let name = arg(req, 0)?.as_str()?;
            let s = state.read();
            s.group_by_name
                .get(name)
                .map(|g| Value::from(g.raw()))
                .ok_or_else(|| SydError::NotRegistered(name.to_owned()))
        }
        // list_users() -> [user ids]
        "list_users" => {
            let s = state.read();
            let mut ids: Vec<u64> = s.users.keys().map(|u| u.raw()).collect();
            ids.sort_unstable();
            Ok(Value::list(ids.into_iter().map(Value::from)))
        }
        other => Err(SydError::NoSuchService(dir_service(), other.to_owned())),
    }
}

/// Client-side typed wrapper over the `syd.dir` service.
#[derive(Clone)]
pub struct DirectoryClient {
    node: Node,
    dir_addr: NodeAddr,
}

impl DirectoryClient {
    /// Builds a client that calls the directory at `dir_addr` from `node`.
    pub fn new(node: Node, dir_addr: NodeAddr) -> Self {
        DirectoryClient { node, dir_addr }
    }

    /// The directory's network address.
    pub fn dir_addr(&self) -> NodeAddr {
        self.dir_addr
    }

    fn call(&self, method: &str, args: Vec<Value>) -> SydResult<Value> {
        // Directory operations are idempotent, so retrying through loss is
        // safe — the prototype's TCP transport retransmitted transparently.
        self.node.call_with(
            self.dir_addr,
            &dir_service(),
            method,
            args,
            syd_net::CallOptions::new().with_retries(4),
        )
    }

    /// Registers a user's device address under a unique name.
    pub fn register(&self, user: UserId, name: &str, addr: NodeAddr) -> SydResult<()> {
        self.call(
            "register",
            vec![
                Value::from(user.raw()),
                Value::str(name),
                Value::from(addr.raw()),
            ],
        )
        .map(|_| ())
    }

    /// Publishes a service name under a user.
    pub fn publish(&self, user: UserId, service: &ServiceName) -> SydResult<()> {
        self.call(
            "publish",
            vec![Value::from(user.raw()), Value::str(service.as_str())],
        )
        .map(|_| ())
    }

    /// Resolves a user to a reachable address. Returns `(addr, is_proxy)`.
    pub fn lookup(&self, user: UserId) -> SydResult<(NodeAddr, bool)> {
        let v = self.call("lookup", vec![Value::from(user.raw())])?;
        let addr = NodeAddr::new(v.get("addr")?.as_i64()? as u64);
        let is_proxy = v.get("is_proxy")?.as_bool()?;
        Ok((addr, is_proxy))
    }

    /// [`DirectoryClient::lookup`] with explicit deadline/retry options —
    /// the engine's lossy-network fallback passes its own (typically much
    /// shorter) timeout so a retried lookup stays inside the call budget.
    pub fn lookup_with(
        &self,
        user: UserId,
        opts: syd_net::CallOptions,
    ) -> SydResult<(NodeAddr, bool)> {
        let v = self.node.call_with(
            self.dir_addr,
            &dir_service(),
            "lookup",
            vec![Value::from(user.raw())],
            opts,
        )?;
        let addr = NodeAddr::new(v.get("addr")?.as_i64()? as u64);
        let is_proxy = v.get("is_proxy")?.as_bool()?;
        Ok((addr, is_proxy))
    }

    /// Resolves a whole group of users in one round trip. The result is
    /// aligned with `users`: `None` marks a user the directory does not
    /// know (the batch itself still succeeds).
    pub fn lookup_many(&self, users: &[UserId]) -> SydResult<Vec<Option<(NodeAddr, bool)>>> {
        self.lookup_many_with(users, syd_net::CallOptions::new().with_retries(4))
    }

    /// [`DirectoryClient::lookup_many`] with explicit deadline/retry
    /// options — the engine passes its own (typically much shorter)
    /// timeout so a lossy batch fails over quickly.
    pub fn lookup_many_with(
        &self,
        users: &[UserId],
        opts: syd_net::CallOptions,
    ) -> SydResult<Vec<Option<(NodeAddr, bool)>>> {
        let ids = Value::list(users.iter().map(|u| Value::from(u.raw())));
        let v = self.node.call_with(
            self.dir_addr,
            &dir_service(),
            "lookup_many",
            vec![ids],
            opts,
        )?;
        let entries = v.as_list()?;
        if entries.len() != users.len() {
            return Err(SydError::Protocol(format!(
                "lookup_many returned {} entries for {} users",
                entries.len(),
                users.len()
            )));
        }
        entries
            .iter()
            .map(|e| match e {
                Value::Null => Ok(None),
                found => {
                    let addr = NodeAddr::new(found.get("addr")?.as_i64()? as u64);
                    let is_proxy = found.get("is_proxy")?.as_bool()?;
                    Ok(Some((addr, is_proxy)))
                }
            })
            .collect()
    }

    /// Resolves a user name to a user id.
    pub fn lookup_name(&self, name: &str) -> SydResult<UserId> {
        let v = self.call("lookup_name", vec![Value::str(name)])?;
        Ok(UserId::new(v.as_i64()? as u64))
    }

    /// Full record for a user.
    pub fn describe(&self, user: UserId) -> SydResult<UserRecord> {
        let v = self.call("describe", vec![Value::from(user.raw())])?;
        Ok(UserRecord {
            user: UserId::new(v.get("user")?.as_i64()? as u64),
            name: v.get("name")?.as_str()?.to_owned(),
            addr: NodeAddr::new(v.get("addr")?.as_i64()? as u64),
            proxy: match v.get("proxy")? {
                Value::Null => None,
                other => Some(NodeAddr::new(other.as_i64()? as u64)),
            },
            connected: v.get("connected")?.as_bool()?,
            services: v
                .get("services")?
                .as_list()?
                .iter()
                .map(|s| s.as_str().map(str::to_owned))
                .collect::<SydResult<_>>()?,
        })
    }

    /// Marks a user's device (dis)connected in the directory.
    pub fn set_connected(&self, user: UserId, connected: bool) -> SydResult<()> {
        self.call(
            "set_connected",
            vec![Value::from(user.raw()), Value::Bool(connected)],
        )
        .map(|_| ())
    }

    /// Registers `proxy_addr` as the user's proxy.
    pub fn register_proxy(&self, user: UserId, proxy_addr: NodeAddr) -> SydResult<()> {
        self.call(
            "register_proxy",
            vec![Value::from(user.raw()), Value::from(proxy_addr.raw())],
        )
        .map(|_| ())
    }

    /// Removes the user's proxy registration.
    pub fn clear_proxy(&self, user: UserId) -> SydResult<()> {
        self.call("clear_proxy", vec![Value::from(user.raw())])
            .map(|_| ())
    }

    /// Creates a named group.
    pub fn create_group(&self, name: &str) -> SydResult<GroupId> {
        let v = self.call("create_group", vec![Value::str(name)])?;
        Ok(GroupId::new(v.as_i64()? as u64))
    }

    /// Adds a user to a group.
    pub fn group_add(&self, group: GroupId, user: UserId) -> SydResult<()> {
        self.call(
            "group_add",
            vec![Value::from(group.raw()), Value::from(user.raw())],
        )
        .map(|_| ())
    }

    /// Removes a user from a group.
    pub fn group_remove(&self, group: GroupId, user: UserId) -> SydResult<()> {
        self.call(
            "group_remove",
            vec![Value::from(group.raw()), Value::from(user.raw())],
        )
        .map(|_| ())
    }

    /// Members of a group.
    pub fn group_members(&self, group: GroupId) -> SydResult<Vec<UserId>> {
        let v = self.call("group_members", vec![Value::from(group.raw())])?;
        v.as_list()?
            .iter()
            .map(|u| Ok(UserId::new(u.as_i64()? as u64)))
            .collect()
    }

    /// Group id by name.
    pub fn group_by_name(&self, name: &str) -> SydResult<GroupId> {
        let v = self.call("group_by_name", vec![Value::str(name)])?;
        Ok(GroupId::new(v.as_i64()? as u64))
    }

    /// All registered users.
    pub fn list_users(&self) -> SydResult<Vec<UserId>> {
        let v = self.call("list_users", vec![])?;
        v.as_list()?
            .iter()
            .map(|u| Ok(UserId::new(u.as_i64()? as u64)))
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_net::Network;

    fn setup() -> (Network, DirectoryServer, DirectoryClient) {
        let net = Network::ideal();
        let dir = DirectoryServer::start(&net);
        let client_node = Node::spawn(&net);
        let client = DirectoryClient::new(client_node, dir.addr());
        (net, dir, client)
    }

    #[test]
    fn register_lookup_describe() {
        let (_net, dir, client) = setup();
        let phil = UserId::new(1);
        let addr = NodeAddr::new(77);
        client.register(phil, "phil", addr).unwrap();
        assert_eq!(dir.user_count(), 1);
        assert_eq!(client.lookup(phil).unwrap(), (addr, false));
        assert_eq!(client.lookup_name("phil").unwrap(), phil);
        let rec = client.describe(phil).unwrap();
        assert_eq!(rec.name, "phil");
        assert!(rec.connected);
        assert!(rec.proxy.is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let (_net, _dir, client) = setup();
        client
            .register(UserId::new(1), "phil", NodeAddr::new(1))
            .unwrap();
        let err = client
            .register(UserId::new(2), "phil", NodeAddr::new(2))
            .unwrap_err();
        assert!(err.to_string().contains("taken"), "{err}");
        // Re-registering the same user under the same name is fine
        // (device rebooted with a new address).
        client
            .register(UserId::new(1), "phil", NodeAddr::new(9))
            .unwrap();
        assert_eq!(client.lookup(UserId::new(1)).unwrap().0, NodeAddr::new(9));
    }

    #[test]
    fn unknown_user_lookup_fails() {
        let (_net, _dir, client) = setup();
        assert!(matches!(
            client.lookup(UserId::new(404)).unwrap_err(),
            SydError::NotRegistered(_)
        ));
        assert!(client.lookup_name("ghost").is_err());
    }

    #[test]
    fn proxy_lookup_switchover() {
        let (_net, _dir, client) = setup();
        let user = UserId::new(3);
        let primary = NodeAddr::new(10);
        let proxy = NodeAddr::new(20);
        client.register(user, "suzy", primary).unwrap();
        client.register_proxy(user, proxy).unwrap();

        // Connected: primary wins.
        assert_eq!(client.lookup(user).unwrap(), (primary, false));
        // Disconnected: proxy takes over.
        client.set_connected(user, false).unwrap();
        assert_eq!(client.lookup(user).unwrap(), (proxy, true));
        // Reconnected: primary again.
        client.set_connected(user, true).unwrap();
        assert_eq!(client.lookup(user).unwrap(), (primary, false));
        // Disconnected with no proxy: primary address returned as-is.
        client.clear_proxy(user).unwrap();
        client.set_connected(user, false).unwrap();
        assert_eq!(client.lookup(user).unwrap(), (primary, false));
    }

    #[test]
    fn service_publication_is_recorded() {
        let (_net, _dir, client) = setup();
        let user = UserId::new(1);
        client.register(user, "phil", NodeAddr::new(1)).unwrap();
        client.publish(user, &ServiceName::new("calendar")).unwrap();
        client.publish(user, &ServiceName::new("calendar")).unwrap(); // idempotent
        client.publish(user, &ServiceName::new("mailbox")).unwrap();
        let rec = client.describe(user).unwrap();
        assert_eq!(rec.services, vec!["calendar", "mailbox"]);
    }

    #[test]
    fn groups_form_and_change_dynamically() {
        let (_net, _dir, client) = setup();
        for (id, name) in [(1, "ann"), (2, "bob"), (3, "cal")] {
            client
                .register(UserId::new(id), name, NodeAddr::new(id))
                .unwrap();
        }
        let biology = client.create_group("biology").unwrap();
        assert_eq!(client.group_by_name("biology").unwrap(), biology);
        assert!(client.create_group("biology").is_err());

        client.group_add(biology, UserId::new(1)).unwrap();
        client.group_add(biology, UserId::new(2)).unwrap();
        client.group_add(biology, UserId::new(2)).unwrap(); // idempotent
        assert_eq!(
            client.group_members(biology).unwrap(),
            vec![UserId::new(1), UserId::new(2)]
        );

        client.group_remove(biology, UserId::new(1)).unwrap();
        assert_eq!(client.group_members(biology).unwrap(), vec![UserId::new(2)]);

        // Unknown users can't join.
        assert!(client.group_add(biology, UserId::new(99)).is_err());
    }

    #[test]
    fn list_users_sorted() {
        let (_net, _dir, client) = setup();
        for id in [5u64, 1, 3] {
            client
                .register(UserId::new(id), &format!("u{id}"), NodeAddr::new(id))
                .unwrap();
        }
        assert_eq!(
            client.list_users().unwrap(),
            vec![UserId::new(1), UserId::new(3), UserId::new(5)]
        );
    }

    #[test]
    fn lookup_many_resolves_a_group_in_one_round_trip() {
        let (_net, dir, client) = setup();
        for (id, name) in [(1, "ann"), (2, "bob"), (3, "cal")] {
            client
                .register(UserId::new(id), name, NodeAddr::new(id))
                .unwrap();
        }
        // Bob is disconnected behind a proxy; 404 is unknown.
        client
            .register_proxy(UserId::new(2), NodeAddr::new(20))
            .unwrap();
        client.set_connected(UserId::new(2), false).unwrap();

        let users = [
            UserId::new(1),
            UserId::new(404),
            UserId::new(2),
            UserId::new(3),
        ];
        let got = client.lookup_many(&users).unwrap();
        assert_eq!(
            got,
            vec![
                Some((NodeAddr::new(1), false)),
                None, // unknown user: a hole, not a batch failure
                Some((NodeAddr::new(20), true)),
                Some((NodeAddr::new(3), false)),
            ]
        );
        // The whole batch was one served request, and the per-user
        // counter confirms all four rode in it.
        assert_eq!(
            dir.metrics()
                .get_counter(names::DIR_BATCH_LOOKUPS)
                .unwrap()
                .get(),
            1
        );
        assert_eq!(
            dir.metrics()
                .get_counter(names::DIR_BATCH_LOOKUP_USERS)
                .unwrap()
                .get(),
            4
        );
        assert_eq!(
            dir.metrics().get_counter(names::DIR_LOOKUPS).unwrap().get(),
            0
        );
    }

    #[test]
    fn lookup_many_of_nothing_is_empty() {
        let (_net, _dir, client) = setup();
        assert_eq!(client.lookup_many(&[]).unwrap(), vec![]);
    }

    #[test]
    fn unknown_method_is_no_such_service() {
        let (net, dir, _client) = setup();
        let node = Node::spawn(&net);
        let err = node
            .call(dir.addr(), &dir_service(), "frobnicate", vec![])
            .unwrap_err();
        assert!(matches!(err, SydError::NoSuchService(_, _)));
    }
}
