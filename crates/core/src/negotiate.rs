//! The negotiation protocol of §4.3: mark/lock → change/unlock.
//!
//! A negotiation link's action is an atomic group transaction over
//! independent devices, with one of three logical constraints:
//!
//! * **and** — "Change A only if B and C can be successfully changed."
//! * **or** (≥ k of n) — "Change A only if at least one (k) of B and C can
//!   be successfully changed."
//! * **xor** (exactly k of n) — "Change A only if exactly one (k) of B and
//!   C can be successfully changed."
//!
//! The paper gives the semantics operationally (Mark and Lock each entity,
//! then Change the locked ones if the constraint holds, else Unlock), and
//! Figure 4 draws the negotiation-or case as a UML activity diagram. This
//! module is that diagram as code:
//!
//! ```text
//!   coordinator                     each participant (incl. itself)
//!   ───────────                     ────────────────────────────────
//!   mark(session, entity, change) ─▶ try-lock entity; prepare(); vote
//!   collect votes                 ◀─ yes / no
//!   constraint satisfied?
//!     yes → commit(…) to chosen   ─▶ apply change; unlock
//!           abort(…) to the rest  ─▶ discard; unlock
//!     no  → abort(…) to yes-voters─▶ discard; unlock
//! ```
//!
//! A participant that cannot lock within the bounded wait simply votes
//! **no** — the coordinator never blocks on a stuck peer, so two meetings
//! negotiating over overlapping participants resolve by abort/retry rather
//! than deadlock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use syd_telemetry::{Counter, EventKind, Journal, Registry};
use syd_types::{ServiceName, SydError, SydResult, UserId, Value};

use crate::engine::SydEngine;
use crate::links::Constraint;
use syd_telemetry::names;

pub mod fsm;

/// The kernel-internal service every device serves for negotiations.
pub fn link_service() -> ServiceName {
    ServiceName::new("syd.link")
}

/// One party to a negotiation: whose entity changes, and how.
#[derive(Clone, Debug, PartialEq)]
pub struct Participant {
    /// The user whose device holds the entity.
    pub user: UserId,
    /// The entity to change (e.g. `"slot:4:14"`).
    pub entity: String,
    /// Application-defined change payload handed to the participant's
    /// [`crate::device::EntityHandler`].
    pub change: Value,
}

impl Participant {
    /// Builds a participant.
    pub fn new(user: UserId, entity: impl Into<String>, change: Value) -> Self {
        Participant {
            user,
            entity: entity.into(),
            change,
        }
    }
}

/// What a negotiation did.
#[derive(Clone, Debug, PartialEq)]
pub struct NegotiationOutcome {
    /// True iff the constraint was satisfied and changes were committed.
    pub satisfied: bool,
    /// Participants whose change was applied.
    pub committed: Vec<UserId>,
    /// Participants that voted yes but were aborted (xor overflow or
    /// constraint failure elsewhere).
    pub aborted: Vec<UserId>,
    /// Participants that declined (could not lock / prepare failed /
    /// unreachable).
    pub declined: Vec<UserId>,
    /// The subset of `declined` whose refusal was a *transient* lock
    /// conflict with another in-flight negotiation (as opposed to a
    /// durable prepare failure). Callers that grab greedily should treat
    /// a non-empty list as "retry after the other coordinator finishes".
    pub contended: Vec<UserId>,
    /// The session id used (diagnostics; lock owner on every device).
    pub session: u64,
}

/// Runs negotiations from one device.
pub struct Negotiator {
    engine: SydEngine,
    local_user: UserId,
    next_session: AtomicU64,
    /// Counts sessions coordinated by this device ("negotiate.sessions").
    sessions: Option<Counter>,
    /// Counts aborts issued by this coordinator ("negotiate.aborts").
    aborts: Option<Counter>,
    /// Postmortem journal recording the §4.3 state transitions.
    journal: Option<Arc<Journal>>,
}

impl Negotiator {
    /// Builds a negotiator. `local_user` seeds globally unique session ids.
    pub fn new(engine: SydEngine, local_user: UserId) -> Negotiator {
        Negotiator {
            engine,
            local_user,
            next_session: AtomicU64::new(1),
            sessions: None,
            aborts: None,
            journal: None,
        }
    }

    /// Attaches metrics and the postmortem journal. Counters are
    /// preregistered here so the negotiation path never touches the
    /// registry lock.
    pub fn with_telemetry(mut self, registry: &Registry, journal: Arc<Journal>) -> Negotiator {
        self.sessions = Some(registry.counter(names::NEGOTIATE_SESSIONS));
        self.aborts = Some(registry.counter(names::NEGOTIATE_ABORTS));
        self.journal = Some(journal);
        self
    }

    fn journal_record(&self, kind: EventKind, detail: String) {
        if let Some(journal) = &self.journal {
            journal.record(kind, detail);
        }
    }

    fn new_session(&self) -> u64 {
        // High bits: coordinating user; low bits: local counter. Unique
        // across the deployment without coordination.
        (self.local_user.raw() << 24) | self.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs one negotiation. Every participant (normally including the
    /// coordinator's own entity, listed first) is marked; the constraint is
    /// evaluated over the votes; changes are committed or aborted per §4.3.
    ///
    /// For `Constraint::Exactly(k)` with more than `k` yes votes, the
    /// yes-voters beyond the first `k` are aborted **and the constraint
    /// still holds** — the paper's "obtain locks on those entities that can
    /// be successfully changed; if obtained exactly one lock" reads
    /// strictly, but a strict reading would make xor unsatisfiable whenever
    /// entities are *too* available; we commit the first `k` in participant
    /// order and record the rest in [`NegotiationOutcome::aborted`].
    /// `and_strict` callers that want the strict reading can check
    /// `outcome.aborted.is_empty()`.
    pub fn negotiate(
        &self,
        constraint: Constraint,
        participants: &[Participant],
    ) -> SydResult<NegotiationOutcome> {
        self.negotiate_impl(constraint, participants, false)
    }

    /// Greedy grab for repair rounds: commits every participant that can
    /// change right now (`AtLeast(0)`) — **unless** any decline was a
    /// transient lock conflict with a concurrent negotiation, in which
    /// case nothing commits and the conflict is reported via
    /// [`NegotiationOutcome::contended`] so the caller can back off and
    /// retry. Committing under crossed locks is how two racing
    /// coordinators each end up holding part of the other's entity set.
    pub fn negotiate_available(
        &self,
        participants: &[Participant],
    ) -> SydResult<NegotiationOutcome> {
        self.negotiate_impl(Constraint::AtLeast(0), participants, true)
    }

    fn negotiate_impl(
        &self,
        constraint: Constraint,
        participants: &[Participant],
        abort_on_contention: bool,
    ) -> SydResult<NegotiationOutcome> {
        if participants.is_empty() {
            return Err(SydError::Protocol("negotiation needs participants".into()));
        }
        let session = self.new_session();
        let svc = link_service();
        if let Some(c) = &self.sessions {
            c.inc();
        }
        self.journal_record(
            EventKind::SpanBegin,
            format!(
                "negotiate session={session} constraint={constraint:?} participants={}",
                participants.len()
            ),
        );

        // Phase 1: mark everyone.
        let mark_calls: Vec<(UserId, Vec<Value>)> = participants
            .iter()
            .map(|p| {
                (
                    p.user,
                    vec![
                        Value::from(session),
                        Value::str(p.entity.clone()),
                        p.change.clone(),
                    ],
                )
            })
            .collect();
        let votes = {
            let mut span = self.engine.node().tracer().span(names::SPAN_MARK_ROUND);
            span.attr("participants", participants.len() as u64);
            self.engine.invoke_group_varied(&mark_calls, &svc, "mark")
        };

        let mut yes = Vec::new();
        let mut declined = Vec::new();
        let mut contended = Vec::new();
        for (i, (user, outcome)) in votes.outcomes.iter().enumerate() {
            match fsm::classify_reply(outcome) {
                fsm::ReplyClass::Yes => yes.push(i),
                fsm::ReplyClass::DeclinedBusy => {
                    contended.push(*user);
                    declined.push(*user);
                }
                fsm::ReplyClass::Declined => declined.push(*user),
            }
        }

        self.journal_record(
            EventKind::Mark,
            format!(
                "session={session} yes={} declined={} contended={}",
                yes.len(),
                declined.len(),
                contended.len()
            ),
        );

        // Decide: the pure §4.3 core in [`fsm::decide`] evaluates the
        // constraint and splits yes-voters into commit and abort sets (a
        // contended round never commits when the caller asked for
        // contention safety).
        let fsm::Decision {
            satisfied,
            commit: to_commit,
            abort: to_abort,
            abort_reason,
        } = fsm::decide(
            constraint,
            &yes,
            participants.len(),
            !contended.is_empty(),
            abort_on_contention,
        );

        // Phase 2: commit the chosen, abort the rest of the yes-voters.
        let commit_calls: Vec<(UserId, Vec<Value>)> = to_commit
            .iter()
            .map(|&i| {
                let p = &participants[i];
                (
                    p.user,
                    vec![
                        Value::from(session),
                        Value::str(p.entity.clone()),
                        p.change.clone(),
                    ],
                )
            })
            .collect();
        let abort_calls: Vec<(UserId, Vec<Value>)> = to_abort
            .iter()
            .map(|&i| {
                let p = &participants[i];
                (
                    p.user,
                    vec![
                        Value::from(session),
                        Value::str(p.entity.clone()),
                        p.change.clone(),
                    ],
                )
            })
            .collect();

        // Phase 2 span covers the commit batch (with its one retry) and
        // every abort — the whole unlock half of §4.3.
        let mut commit_span = self.engine.node().tracer().span(names::SPAN_COMMIT_ROUND);
        commit_span.attr("to_commit", to_commit.len() as u64);
        commit_span.attr("to_abort", to_abort.len() as u64);
        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        if !commit_calls.is_empty() {
            let results = self
                .engine
                .invoke_group_varied(&commit_calls, &svc, "commit");
            // A lost commit message would strand the entity lock; commits
            // are idempotent, so every first-round failure gets one more
            // chance — in a single batched round, so `k` stragglers cost
            // one extra round trip rather than `k` sequential timeouts.
            let mut failed: Vec<(UserId, Vec<Value>)> = Vec::new();
            for (i, (user, outcome)) in results.outcomes.into_iter().enumerate() {
                match outcome {
                    Ok(_) => committed.push(user),
                    Err(_) => failed.push(commit_calls[i].clone()),
                }
            }
            if !failed.is_empty() {
                let retry = self.engine.invoke_group_varied(&failed, &svc, "commit");
                for (user, outcome) in retry.outcomes {
                    match outcome {
                        Ok(_) => committed.push(user),
                        Err(_) => {
                            self.journal_record(
                                EventKind::Abort,
                                format!(
                                    "session={session} user={} reason=commit-failed",
                                    user.raw()
                                ),
                            );
                            if let Some(c) = &self.aborts {
                                c.inc();
                            }
                            aborted.push(user);
                        }
                    }
                }
            }
            if !committed.is_empty() {
                self.journal_record(
                    EventKind::Change,
                    format!("session={session} committed={}", committed.len()),
                );
            }
        }
        if !abort_calls.is_empty() {
            let results = self.engine.invoke_group_varied(&abort_calls, &svc, "abort");
            for (user, _) in results.outcomes {
                self.journal_record(
                    EventKind::Abort,
                    format!(
                        "session={session} user={} reason={abort_reason}",
                        user.raw()
                    ),
                );
                if let Some(c) = &self.aborts {
                    c.inc();
                }
                aborted.push(user);
            }
        }
        // Also send aborts to the *decliners*: a participant whose yes
        // vote was lost in transit holds its entity lock and was counted
        // as declined; abort releases that lock (and is a no-op for a
        // participant that really voted no). Best effort.
        if !declined.is_empty() {
            let decline_aborts: Vec<(UserId, Vec<Value>)> = participants
                .iter()
                .filter(|p| declined.contains(&p.user))
                .map(|p| {
                    (
                        p.user,
                        vec![
                            Value::from(session),
                            Value::str(p.entity.clone()),
                            p.change.clone(),
                        ],
                    )
                })
                .collect();
            let _ = self
                .engine
                .invoke_group_varied(&decline_aborts, &svc, "abort");
        }
        drop(commit_span);

        // Re-evaluate the constraint over the *committed* set: a commit
        // RPC that failed (and exhausted its retry) moved a yes-voter into
        // `aborted`, and a constraint that held over the votes may no
        // longer hold over what actually changed (caught by `syd-check`'s
        // constraint arithmetic audit under lossy networks).
        let final_ok =
            fsm::outcome_satisfied(constraint, satisfied, committed.len(), participants.len());
        #[cfg(debug_assertions)]
        {
            // §4.3 conservation: every participant ends in exactly one of
            // committed / aborted / declined.
            let mut all: Vec<UserId> = committed
                .iter()
                .chain(aborted.iter())
                .chain(declined.iter())
                .copied()
                .collect();
            all.sort_unstable();
            let mut expected: Vec<UserId> = participants.iter().map(|p| p.user).collect();
            expected.sort_unstable();
            debug_assert_eq!(
                all, expected,
                "negotiation session {session} lost or duplicated a participant"
            );
        }
        let outcome = NegotiationOutcome {
            satisfied: final_ok,
            committed,
            aborted,
            declined,
            contended,
            session,
        };
        self.journal_record(
            EventKind::SpanEnd,
            format!(
                "negotiate session={session} satisfied={} committed={} aborted={} declined={}",
                outcome.satisfied,
                outcome.committed.len(),
                outcome.aborted.len(),
                outcome.declined.len()
            ),
        );
        Ok(outcome)
    }

    /// Negotiation-and over `participants` (§4.3): all or nothing.
    pub fn negotiate_and(&self, participants: &[Participant]) -> SydResult<NegotiationOutcome> {
        self.negotiate(Constraint::And, participants)
    }

    /// Negotiation-or: at least `k` of the participants must change.
    pub fn negotiate_or(
        &self,
        k: u32,
        participants: &[Participant],
    ) -> SydResult<NegotiationOutcome> {
        self.negotiate(Constraint::AtLeast(k), participants)
    }

    /// Negotiation-xor: exactly `k` of the participants change.
    pub fn negotiate_xor(
        &self,
        k: u32,
        participants: &[Participant],
    ) -> SydResult<NegotiationOutcome> {
        self.negotiate(Constraint::Exactly(k), participants)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    // Protocol-level behaviour is exercised end-to-end in the device tests
    // and integration tests (it needs live devices with entity handlers);
    // here we test the pure pieces.

    #[test]
    fn participant_builder() {
        let p = Participant::new(UserId::new(1), "slot:1:2", Value::str("reserve"));
        assert_eq!(p.user, UserId::new(1));
        assert_eq!(p.entity, "slot:1:2");
    }

    #[test]
    fn session_ids_unique_and_user_scoped() {
        // Two negotiators for different users can never collide.
        let a = (UserId::new(3).raw() << 24) | 1;
        let b = (UserId::new(4).raw() << 24) | 1;
        assert_ne!(a, b);
    }
}
