//! SyDEventHandler: local/global events and periodic tasks (§3.1d).
//!
//! "This module handles local and global event registration, monitoring,
//! and triggering." Locally it is a topic-prefix-matched callback bus;
//! globally, events arrive from the network as fire-and-forget
//! [`syd_wire::EventMsg`]s and are re-published locally. The handler also
//! runs the kernel's periodic work — most importantly the link-expiry scan
//! of §4.2 op. 6 ("Periodically, the local event handler triggers a method
//! which checks for links whose expiration times have been surpassed").
//!
//! This module is also where *middleware triggers* (§5.3's stated future
//! direction) live: [`EventHandler::bridge_store`] installs a store-level
//! after-trigger that republishes every row change as a local event
//! (`store.<table>.insert|update|delete`), so application logic can react
//! to database changes without any Oracle-specific machinery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use syd_net::{TimerId, TimerWheel};
use syd_store::{Store, Trigger, TriggerEvent};
use syd_types::{SydResult, Value};

/// Callback invoked with `(topic, payload)`.
pub type EventCallback = Arc<dyn Fn(&str, &Value) + Send + Sync>;

/// A named periodic task.
pub struct PeriodicTask {
    /// Task name (unique; used for cancellation).
    pub name: String,
    /// Interval between runs.
    pub interval: Duration,
    next_due: Instant,
    action: Arc<dyn Fn() + Send + Sync>,
}

struct SchedulerState {
    tasks: Vec<PeriodicTask>,
    /// Wheel-mode only: the shared-wheel entry backing each named task.
    wheel_ids: HashMap<String, TimerId>,
}

struct Inner {
    subs: RwLock<Vec<(String, EventCallback)>>,
    scheduler: Mutex<SchedulerState>,
    wake: Condvar,
    /// Wheel mode ([`EventHandler::with_timer`]): periodic tasks are
    /// entries on a shared [`TimerWheel`] and no scheduler thread runs.
    timer: Option<TimerWheel>,
    shutdown: AtomicBool,
    published: AtomicU64,
    delivered: AtomicU64,
}

/// The event handler. Cloning shares it.
#[derive(Clone)]
pub struct EventHandler {
    inner: Arc<Inner>,
}

impl Default for EventHandler {
    fn default() -> Self {
        Self::new()
    }
}

impl EventHandler {
    /// Creates an event handler and starts its scheduler thread.
    pub fn new() -> EventHandler {
        let inner = Self::build_inner(None);
        let sched_inner = Arc::clone(&inner);
        // Without its scheduler thread no timed event ever fires:
        // construction failure is unrecoverable, panicking is the contract.
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name("syd-events-scheduler".into())
            .spawn(move || scheduler_loop(sched_inner))
            .expect("spawn scheduler");
        EventHandler { inner }
    }

    /// Creates an event handler whose periodic tasks run as entries on
    /// `timer` — a wheel shared with the rest of the fleet runtime — so
    /// the handler costs no thread of its own. [`EventHandler::shutdown`]
    /// cancels this handler's entries but leaves the shared wheel alive.
    pub fn with_timer(timer: TimerWheel) -> EventHandler {
        EventHandler {
            inner: Self::build_inner(Some(timer)),
        }
    }

    fn build_inner(timer: Option<TimerWheel>) -> Arc<Inner> {
        Arc::new(Inner {
            subs: RwLock::new(Vec::new()),
            scheduler: Mutex::new(SchedulerState {
                tasks: Vec::new(),
                wheel_ids: HashMap::new(),
            }),
            wake: Condvar::new(),
            timer,
            shutdown: AtomicBool::new(false),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        })
    }

    /// Subscribes `callback` to every topic starting with `prefix`
    /// (empty prefix = everything).
    pub fn subscribe(&self, prefix: &str, callback: EventCallback) {
        self.inner.subs.write().push((prefix.to_owned(), callback));
    }

    /// Publishes an event to local subscribers, synchronously.
    pub fn publish_local(&self, topic: &str, payload: &Value) {
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        let subs = self.inner.subs.read();
        for (prefix, callback) in subs.iter() {
            if topic.starts_with(prefix.as_str()) {
                self.inner.delivered.fetch_add(1, Ordering::Relaxed);
                callback(topic, payload);
            }
        }
    }

    /// Registers (or replaces) a periodic task.
    ///
    /// The registrar's trace context (if any) is captured and restored
    /// around every firing, in both scheduler-thread and shared-wheel
    /// modes, so periodic work stays attributed to the trace that set
    /// it up.
    pub fn register_periodic(
        &self,
        name: &str,
        interval: Duration,
        action: impl Fn() + Send + Sync + 'static,
    ) {
        let ctx = syd_telemetry::trace::current();
        let action: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            let _span = ctx.map(syd_telemetry::trace::enter);
            action();
        });
        let mut state = self.inner.scheduler.lock();
        state.tasks.retain(|t| t.name != name);
        state.tasks.push(PeriodicTask {
            name: name.to_owned(),
            interval,
            next_due: Instant::now() + interval,
            action: Arc::clone(&action),
        });
        if let Some(timer) = &self.inner.timer {
            let wheel_action = Arc::clone(&action);
            let id = timer.schedule_periodic(interval, move || wheel_action());
            if let Some(old) = state.wheel_ids.insert(name.to_owned(), id) {
                timer.cancel(old);
            }
        }
        drop(state);
        self.inner.wake.notify_all();
    }

    /// Cancels a periodic task by name.
    pub fn cancel_periodic(&self, name: &str) {
        let mut state = self.inner.scheduler.lock();
        state.tasks.retain(|t| t.name != name);
        if let Some(timer) = &self.inner.timer {
            if let Some(id) = state.wheel_ids.remove(name) {
                timer.cancel(id);
            }
        }
    }

    /// Runs every periodic task once, immediately — used by tests and by
    /// deterministic benches instead of waiting for wall-clock intervals.
    pub fn run_periodic_now(&self) {
        let actions: Vec<Arc<dyn Fn() + Send + Sync>> = {
            let mut state = self.inner.scheduler.lock();
            let now = Instant::now();
            state
                .tasks
                .iter_mut()
                .map(|t| {
                    t.next_due = now + t.interval;
                    Arc::clone(&t.action)
                })
                .collect()
        };
        for action in actions {
            action();
        }
    }

    /// `(published, delivered)` local event counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.inner.published.load(Ordering::Relaxed),
            self.inner.delivered.load(Ordering::Relaxed),
        )
    }

    /// Installs middleware triggers: every row change on `table` in
    /// `store` is republished as a local event with topic
    /// `store.<table>.<insert|update|delete>` and a payload carrying the
    /// old/new row values.
    pub fn bridge_store(&self, store: &Store, table: &str) -> SydResult<()> {
        let handler = self.clone();
        let table_name = table.to_owned();
        store.add_trigger(Trigger::after(
            format!("syd-events-bridge-{table}"),
            table,
            vec![
                TriggerEvent::Insert,
                TriggerEvent::Update,
                TriggerEvent::Delete,
            ],
            move |ctx| {
                let kind = match ctx.event {
                    TriggerEvent::Insert => "insert",
                    TriggerEvent::Update => "update",
                    TriggerEvent::Delete => "delete",
                };
                let payload = Value::map([
                    (
                        "old",
                        ctx.old.map_or(Value::Null, |row| Value::list(row.to_vec())),
                    ),
                    (
                        "new",
                        ctx.new.map_or(Value::Null, |row| Value::list(row.to_vec())),
                    ),
                ]);
                handler.publish_local(&format!("store.{table_name}.{kind}"), &payload);
                Ok(())
            },
        ))
    }

    /// Stops timed work: the scheduler thread in thread mode, or this
    /// handler's shared-wheel entries in wheel mode (the wheel itself
    /// belongs to the runtime and keeps running).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(timer) = &self.inner.timer {
            let mut state = self.inner.scheduler.lock();
            for (_, id) in state.wheel_ids.drain() {
                timer.cancel(id);
            }
            state.tasks.clear();
        }
        self.inner.wake.notify_all();
    }
}

fn scheduler_loop(inner: Arc<Inner>) {
    let mut state = inner.scheduler.lock();
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        let mut due: Vec<Arc<dyn Fn() + Send + Sync>> = Vec::new();
        let mut next_wake: Option<Instant> = None;
        for task in &mut state.tasks {
            if task.next_due <= now {
                due.push(Arc::clone(&task.action));
                task.next_due = now + task.interval;
            }
            next_wake = Some(match next_wake {
                None => task.next_due,
                Some(w) => w.min(task.next_due),
            });
        }
        if !due.is_empty() {
            // Run actions without holding the scheduler lock.
            drop(state);
            for action in due {
                action();
            }
            state = inner.scheduler.lock();
            continue;
        }
        match next_wake {
            Some(when) => {
                let wait = when.saturating_duration_since(Instant::now());
                inner
                    .wake
                    .wait_for(&mut state, wait.max(Duration::from_millis(1)));
            }
            None => {
                inner.wake.wait(&mut state);
            }
        }
    }
}

impl Drop for EventHandler {
    fn drop(&mut self) {
        // Thread mode: just us and the scheduler left → stop the thread.
        // Wheel mode: no scheduler clone exists, so the floor is 1, and
        // shutdown cancels the wheel entries (whose actions would
        // otherwise keep capturing device internals forever).
        let floor = if self.inner.timer.is_some() { 1 } else { 2 };
        if Arc::strong_count(&self.inner) <= floor {
            self.shutdown();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use syd_store::{Column, ColumnType, Predicate, Schema};

    #[test]
    fn prefix_subscription_filters_topics() {
        let events = EventHandler::new();
        let link_events = Arc::new(AtomicU32::new(0));
        let all_events = Arc::new(AtomicU32::new(0));
        let lc = Arc::clone(&link_events);
        events.subscribe(
            "link.",
            Arc::new(move |_t, _p| {
                lc.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let ac = Arc::clone(&all_events);
        events.subscribe(
            "",
            Arc::new(move |_t, _p| {
                ac.fetch_add(1, Ordering::SeqCst);
            }),
        );
        events.publish_local("link.deleted", &Value::Null);
        events.publish_local("calendar.changed", &Value::Null);
        assert_eq!(link_events.load(Ordering::SeqCst), 1);
        assert_eq!(all_events.load(Ordering::SeqCst), 2);
        assert_eq!(events.counters(), (2, 3));
    }

    #[test]
    fn periodic_task_runs_on_schedule() {
        let events = EventHandler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let rc = Arc::clone(&runs);
        events.register_periodic("tick", Duration::from_millis(20), move || {
            rc.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(3);
        while runs.load(Ordering::SeqCst) < 3 {
            assert!(Instant::now() < deadline, "periodic task did not run");
            std::thread::sleep(Duration::from_millis(5));
        }
        events.cancel_periodic("tick");
        let after_cancel = runs.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(80));
        // Allow one in-flight run that raced the cancel.
        assert!(runs.load(Ordering::SeqCst) <= after_cancel + 1);
        events.shutdown();
    }

    #[test]
    fn periodic_tasks_inherit_the_registrars_trace_context() {
        use syd_telemetry::trace;
        // Thread mode: the scheduler thread must restore the ctx.
        let events = EventHandler::new();
        let ctx = trace::root_span();
        let seen = Arc::new(Mutex::new(None));
        {
            let _g = trace::enter(ctx);
            let sc = Arc::clone(&seen);
            events.register_periodic("probe", Duration::from_millis(10), move || {
                *sc.lock() = Some(trace::current());
            });
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        while seen.lock().is_none() {
            assert!(Instant::now() < deadline, "periodic task did not run");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*seen.lock(), Some(Some(ctx)), "legacy mode lost the ctx");
        events.shutdown();

        // Wheel mode: the shared timer thread must restore it too.
        let wheel = TimerWheel::new("events-trace-test");
        let events = EventHandler::with_timer(wheel.clone());
        let seen = Arc::new(Mutex::new(None));
        {
            let _g = trace::enter(ctx);
            let sc = Arc::clone(&seen);
            events.register_periodic("probe", Duration::from_millis(10), move || {
                *sc.lock() = Some(trace::current());
            });
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        while seen.lock().is_none() {
            assert!(Instant::now() < deadline, "wheel task did not run");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*seen.lock(), Some(Some(ctx)), "wheel mode lost the ctx");
        events.shutdown();
        wheel.shutdown();
    }

    #[test]
    fn run_periodic_now_is_deterministic() {
        let events = EventHandler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let rc = Arc::clone(&runs);
        events.register_periodic("scan", Duration::from_secs(3600), move || {
            rc.fetch_add(1, Ordering::SeqCst);
        });
        events.run_periodic_now();
        events.run_periodic_now();
        assert_eq!(runs.load(Ordering::SeqCst), 2);
        events.shutdown();
    }

    #[test]
    fn replacing_a_periodic_task_keeps_one_instance() {
        let events = EventHandler::new();
        let a = Arc::new(AtomicU32::new(0));
        let b = Arc::new(AtomicU32::new(0));
        let ac = Arc::clone(&a);
        events.register_periodic("job", Duration::from_secs(3600), move || {
            ac.fetch_add(1, Ordering::SeqCst);
        });
        let bc = Arc::clone(&b);
        events.register_periodic("job", Duration::from_secs(3600), move || {
            bc.fetch_add(1, Ordering::SeqCst);
        });
        events.run_periodic_now();
        assert_eq!(a.load(Ordering::SeqCst), 0, "old task should be replaced");
        assert_eq!(b.load(Ordering::SeqCst), 1);
        events.shutdown();
    }

    #[test]
    fn wheel_mode_runs_periodic_tasks_and_releases_the_shared_wheel() {
        let wheel = TimerWheel::new("events-test");
        let events = EventHandler::with_timer(wheel.clone());
        let runs = Arc::new(AtomicU32::new(0));
        let rc = Arc::clone(&runs);
        events.register_periodic("tick", Duration::from_millis(10), move || {
            rc.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(3);
        while runs.load(Ordering::SeqCst) < 3 {
            assert!(Instant::now() < deadline, "wheel task did not run");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Replacing a task must not leave the old wheel entry firing.
        events.register_periodic("tick", Duration::from_secs(3600), || {});
        let after_replace = runs.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(60));
        assert!(runs.load(Ordering::SeqCst) <= after_replace + 1);
        // Shutdown cancels this handler's entries but not the wheel.
        events.shutdown();
        assert_eq!(wheel.pending(), 0, "entries leaked on the shared wheel");
        wheel.shutdown();
    }

    #[test]
    fn store_bridge_republishes_row_changes() {
        let events = EventHandler::new();
        let store = Store::new();
        store
            .create_table(
                Schema::new(
                    "slots",
                    vec![Column::required("day", ColumnType::I64)],
                    &["day"],
                )
                .unwrap(),
            )
            .unwrap();
        events.bridge_store(&store, "slots").unwrap();

        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sc = Arc::clone(&seen);
        events.subscribe(
            "store.slots.",
            Arc::new(move |topic, payload| {
                // Payload carries rows.
                assert!(payload.as_map().is_ok());
                sc.lock().push(topic.to_owned());
            }),
        );

        store.insert("slots", vec![Value::I64(1)]).unwrap();
        store
            .update(
                "slots",
                &Predicate::Eq("day".into(), Value::I64(1)),
                &[("day".into(), Value::I64(2))],
            )
            .unwrap();
        store
            .delete("slots", &Predicate::Eq("day".into(), Value::I64(2)))
            .unwrap();
        assert_eq!(
            *seen.lock(),
            vec![
                "store.slots.insert".to_owned(),
                "store.slots.update".to_owned(),
                "store.slots.delete".to_owned(),
            ]
        );
        events.shutdown();
    }
}
