//! SyDLinks: coordination links (§4) — the paper's central contribution.
//!
//! A coordination link is "an abstract relationship among a group of
//! objects/databases with an underlying constraint and a set of
//! event-triggered actions" (§4). Concretely (§4.1), a link is an entry in
//! a data store associated with an entity, specified by:
//!
//! * its **type** — subscription or negotiation ([`LinkKind`]),
//! * its **subtype** — permanent or tentative ([`LinkStatus`]),
//! * **references** to one or more entities with a trigger action each
//!   ([`LinkRef`]),
//! * a **priority**, a **constraint** (and / or / xor, generalized to
//!   k-of-n, [`Constraint`]), a **creation time** and an **expiry time**.
//!
//! Link state lives in the device's own store, in the tables the paper
//! names: `SyD_Link` (+ `SyD_LinkRef` for the multi-reference fan-out),
//! `SyD_WaitingLink` for tentative links queued behind a permanent one
//! (§4.2 op. 3), and `SyD_LinkMethod` for method coupling (§4.2 op. 5).
//!
//! The six operations of §4.2 map to:
//!
//! 1. link database creation → [`LinksModule::new`] (creates the tables)
//! 2. link creation → [`LinksModule::create_negotiated`] /
//!    [`LinksModule::add_local`]
//! 3. tentative → permanent: waiting-link promotion inside
//!    [`LinksModule::delete`]
//! 4. link deletion → [`LinksModule::delete`] (cascades via
//!    `syd.link/delete_by_corr` on peers)
//! 5. method invocation → [`LinksModule::couple_method`] +
//!    [`LinksModule::invoke_coupled`]
//! 6. link expiry → [`LinksModule::expire_scan`], run by the event
//!    handler's periodic task

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{
    Clock, LinkId, Priority, ServiceName, SydError, SydResult, Timestamp, UserId, Value,
};

use crate::engine::SydEngine;
use crate::events::EventHandler;
use crate::negotiate::{link_service, NegotiationOutcome, Negotiator, Participant};

pub mod lifecycle;

/// Logical constraint of a negotiation link (§4.3), generalized to k-of-n
/// exactly as the paper notes ("can be extended to at least/exactly k out
/// of n").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// All references must change (negotiation-and).
    And,
    /// At least `k` references must change (negotiation-or).
    AtLeast(u32),
    /// Exactly `k` references change (negotiation-xor).
    Exactly(u32),
}

/// Link type (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Automatic information flow from the entity to the references.
    Subscription,
    /// Constraint-checked atomic group change across the references.
    Negotiation(Constraint),
}

/// Link subtype (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkStatus {
    /// In force.
    Permanent,
    /// Queued, waiting on a permanent link (see `SyD_WaitingLink`).
    Tentative,
}

/// One reference of a link: a peer entity and the trigger action to run
/// there (an ECA rule: the event is "the local entity changed", the
/// condition is evaluated by the peer, the action is `action`).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkRef {
    /// Peer user.
    pub user: UserId,
    /// Peer entity (e.g. the matching slot in the peer's calendar).
    pub entity: String,
    /// Action name delivered to the peer's subscription handler (for
    /// subscription links) or change payload discriminator (negotiation).
    pub action: String,
}

impl LinkRef {
    /// Builds a reference.
    pub fn new(user: UserId, entity: impl Into<String>, action: impl Into<String>) -> Self {
        LinkRef {
            user,
            entity: entity.into(),
            action: action.into(),
        }
    }
}

/// A coordination link record.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// Local link id.
    pub id: LinkId,
    /// Subscription or negotiation(+constraint).
    pub kind: LinkKind,
    /// Permanent or tentative.
    pub status: LinkStatus,
    /// The local entity the link is anchored on.
    pub entity: String,
    /// References with their trigger actions.
    pub refs: Vec<LinkRef>,
    /// Priority (drives waiting-link promotion and bumping).
    pub priority: Priority,
    /// Creation time.
    pub created: Timestamp,
    /// Expiry time; `None` = never.
    pub expires: Option<Timestamp>,
    /// Correlation id shared by all links of one logical connection —
    /// cascade deletion follows it across devices.
    pub corr: String,
}

impl Link {
    /// Serializes for the wire (`syd.link/install_link`).
    pub fn to_value(&self) -> Value {
        let (kind, k) = match self.kind {
            LinkKind::Subscription => ("sub", 0u32),
            LinkKind::Negotiation(Constraint::And) => ("and", 0),
            LinkKind::Negotiation(Constraint::AtLeast(k)) => ("atleast", k),
            LinkKind::Negotiation(Constraint::Exactly(k)) => ("exactly", k),
        };
        Value::map([
            ("kind", Value::str(kind)),
            ("k", Value::from(k)),
            (
                "status",
                Value::str(match self.status {
                    LinkStatus::Permanent => "perm",
                    LinkStatus::Tentative => "tent",
                }),
            ),
            ("entity", Value::str(self.entity.clone())),
            (
                "refs",
                Value::list(self.refs.iter().map(|r| {
                    Value::map([
                        ("user", Value::from(r.user.raw())),
                        ("entity", Value::str(r.entity.clone())),
                        ("action", Value::str(r.action.clone())),
                    ])
                })),
            ),
            ("priority", Value::from(self.priority.level() as u32)),
            ("created", Value::from(self.created.as_micros())),
            (
                "expires",
                self.expires
                    .map_or(Value::Null, |t| Value::from(t.as_micros())),
            ),
            ("corr", Value::str(self.corr.clone())),
        ])
    }

    /// Deserializes from the wire. The local id is assigned by the
    /// receiving device, so `value` carries none.
    pub fn from_value(value: &Value) -> SydResult<Link> {
        let kind_str = value.get("kind")?.as_str()?;
        let k = value.get("k")?.as_i64()? as u32;
        let kind = match kind_str {
            "sub" => LinkKind::Subscription,
            "and" => LinkKind::Negotiation(Constraint::And),
            "atleast" => LinkKind::Negotiation(Constraint::AtLeast(k)),
            "exactly" => LinkKind::Negotiation(Constraint::Exactly(k)),
            other => return Err(SydError::Protocol(format!("bad link kind `{other}`"))),
        };
        let status = match value.get("status")?.as_str()? {
            "perm" => LinkStatus::Permanent,
            "tent" => LinkStatus::Tentative,
            other => return Err(SydError::Protocol(format!("bad link status `{other}`"))),
        };
        let refs = value
            .get("refs")?
            .as_list()?
            .iter()
            .map(|r| {
                Ok(LinkRef {
                    user: UserId::new(r.get("user")?.as_i64()? as u64),
                    entity: r.get("entity")?.as_str()?.to_owned(),
                    action: r.get("action")?.as_str()?.to_owned(),
                })
            })
            .collect::<SydResult<Vec<_>>>()?;
        Ok(Link {
            id: LinkId::new(0),
            kind,
            status,
            entity: value.get("entity")?.as_str()?.to_owned(),
            refs,
            priority: Priority::new(value.get("priority")?.as_i64()? as u8),
            created: Timestamp::from_micros(value.get("created")?.as_i64()? as u64),
            expires: match value.get("expires")? {
                Value::Null => None,
                t => Some(Timestamp::from_micros(t.as_i64()? as u64)),
            },
            corr: value.get("corr")?.as_str()?.to_owned(),
        })
    }
}

/// Specification for creating a link (the id and timestamps are assigned
/// by the module).
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Link type.
    pub kind: LinkKind,
    /// Initial status.
    pub status: LinkStatus,
    /// Local anchor entity.
    pub entity: String,
    /// References.
    pub refs: Vec<LinkRef>,
    /// Priority.
    pub priority: Priority,
    /// Optional expiry.
    pub expires: Option<Timestamp>,
    /// Correlation id; empty = assign a fresh one.
    pub corr: String,
    /// If tentative: the permanent link this one waits on, plus a waiting
    /// group id (links promoted together share a group).
    pub waits_on: Option<(LinkId, u64)>,
}

impl LinkSpec {
    /// A permanent subscription link from `entity` to `refs`.
    pub fn subscription(entity: impl Into<String>, refs: Vec<LinkRef>) -> LinkSpec {
        LinkSpec {
            kind: LinkKind::Subscription,
            status: LinkStatus::Permanent,
            entity: entity.into(),
            refs,
            priority: Priority::NORMAL,
            expires: None,
            corr: String::new(),
            waits_on: None,
        }
    }

    /// A permanent negotiation link from `entity` to `refs`.
    pub fn negotiation(
        entity: impl Into<String>,
        constraint: Constraint,
        refs: Vec<LinkRef>,
    ) -> LinkSpec {
        LinkSpec {
            kind: LinkKind::Negotiation(constraint),
            status: LinkStatus::Permanent,
            entity: entity.into(),
            refs,
            priority: Priority::NORMAL,
            expires: None,
            corr: String::new(),
            waits_on: None,
        }
    }

    /// Builder: sets priority.
    pub fn with_priority(mut self, priority: Priority) -> LinkSpec {
        self.priority = priority;
        self
    }

    /// Builder: sets expiry.
    pub fn with_expiry(mut self, expires: Timestamp) -> LinkSpec {
        self.expires = Some(expires);
        self
    }

    /// Builder: sets the correlation id (to join an existing connection).
    pub fn with_corr(mut self, corr: impl Into<String>) -> LinkSpec {
        self.corr = corr.into();
        self
    }

    /// Builder: makes the link tentative, waiting on `link` in group
    /// `group`.
    pub fn waiting_on(mut self, link: LinkId, group: u64) -> LinkSpec {
        self.status = LinkStatus::Tentative;
        self.waits_on = Some((link, group));
        self
    }
}

/// One entry of the `SyD_WaitingLink` table: a tentative link queued
/// behind a permanent one (§4.2 op. 3). Exposed for the invariant
/// checker's waiting-queue audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitingEntry {
    /// The tentative link that is waiting.
    pub link: LinkId,
    /// The link it waits on.
    pub waits_on: LinkId,
    /// Promotion priority.
    pub priority: Priority,
    /// Waiting group (links promoted together share a group).
    pub group: u64,
}

/// Report from a link deletion.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeleteReport {
    /// Links deleted locally.
    pub deleted: Vec<LinkId>,
    /// Waiting links promoted to permanent (§4.2 op. 3).
    pub promoted: Vec<LinkId>,
    /// Peers the cascade reached.
    pub cascaded_to: Vec<UserId>,
}

/// Result of firing the links anchored on an entity.
#[derive(Debug)]
pub enum FireResult {
    /// A subscription link delivered notifications: `(delivered, failed)`.
    /// Failures are expected ("a try may not succeed", §4.3).
    Notified {
        /// The link that fired.
        link: LinkId,
        /// Successful deliveries.
        delivered: usize,
        /// Failed deliveries.
        failed: usize,
    },
    /// A negotiation link ran the §4.3 protocol.
    Negotiated {
        /// The link that fired.
        link: LinkId,
        /// Protocol outcome.
        outcome: NegotiationOutcome,
    },
}

/// Callback invoked when a waiting link is promoted to permanent.
pub type PromotionHandler = Arc<dyn Fn(&Link) + Send + Sync>;

/// The SyDLinks module of one device.
pub struct LinksModule {
    store: Store,
    engine: SydEngine,
    user: UserId,
    clock: Arc<dyn Clock>,
    events: EventHandler,
    next_link: AtomicU64,
    next_corr: AtomicU64,
    promotion: RwLock<Option<PromotionHandler>>,
}

const T_LINK: &str = "SyD_Link";
const T_REF: &str = "SyD_LinkRef";
const T_WAIT: &str = "SyD_WaitingLink";
const T_METHOD: &str = "SyD_LinkMethod";

impl LinksModule {
    /// §4.2 op. 1: creates the link database for this user ("this link
    /// database is created for a user when he/she installs a SyD
    /// application with link-enabled features").
    pub fn new(
        store: Store,
        engine: SydEngine,
        user: UserId,
        clock: Arc<dyn Clock>,
        events: EventHandler,
    ) -> SydResult<LinksModule> {
        store.create_table(Schema::new(
            T_LINK,
            vec![
                Column::required("id", ColumnType::I64),
                Column::required("kind", ColumnType::Str),
                Column::required("k", ColumnType::I64),
                Column::required("status", ColumnType::Str),
                Column::required("entity", ColumnType::Str),
                Column::required("priority", ColumnType::I64),
                Column::required("created", ColumnType::I64),
                Column::nullable("expires", ColumnType::I64),
                Column::required("corr", ColumnType::Str),
            ],
            &["id"],
        )?)?;
        store.create_index(T_LINK, "entity")?;
        store.create_index(T_LINK, "corr")?;
        store.create_table(Schema::new(
            T_REF,
            vec![
                Column::required("link_id", ColumnType::I64),
                Column::required("idx", ColumnType::I64),
                Column::required("user", ColumnType::I64),
                Column::required("entity", ColumnType::Str),
                Column::required("action", ColumnType::Str),
            ],
            &["link_id", "idx"],
        )?)?;
        store.create_index(T_REF, "link_id")?;
        store.create_table(Schema::new(
            T_WAIT,
            vec![
                Column::required("link_id", ColumnType::I64),
                Column::required("waits_on", ColumnType::I64),
                Column::required("priority", ColumnType::I64),
                Column::required("group_id", ColumnType::I64),
            ],
            &["link_id"],
        )?)?;
        store.create_index(T_WAIT, "waits_on")?;
        store.create_table(Schema::new(
            T_METHOD,
            vec![
                Column::required("id", ColumnType::I64),
                Column::required("service", ColumnType::Str),
                Column::required("src_method", ColumnType::Str),
                Column::required("dst_user", ColumnType::I64),
                Column::required("dst_service", ColumnType::Str),
                Column::required("dst_method", ColumnType::Str),
            ],
            &["id"],
        )?)?;
        store.create_index(T_METHOD, "src_method")?;
        Ok(LinksModule {
            store,
            engine,
            user,
            clock,
            events,
            next_link: AtomicU64::new(1),
            next_corr: AtomicU64::new(1),
            promotion: RwLock::new(None),
        })
    }

    /// The user owning this link database.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Installs the handler invoked when a waiting link is promoted.
    pub fn set_promotion_handler(&self, handler: PromotionHandler) {
        *self.promotion.write() = Some(handler);
    }

    fn fresh_corr(&self) -> String {
        format!(
            "corr:{}:{}",
            self.user.raw(),
            self.next_corr.fetch_add(1, Ordering::Relaxed)
        )
    }

    // ---- local CRUD --------------------------------------------------------

    /// Installs a link locally (no peer interaction). Returns the stored
    /// link with its assigned id and correlation id.
    pub fn add_local(&self, spec: LinkSpec) -> SydResult<Link> {
        let id = LinkId::new(self.next_link.fetch_add(1, Ordering::Relaxed));
        let corr = if spec.corr.is_empty() {
            self.fresh_corr()
        } else {
            spec.corr.clone()
        };
        let created = self.clock.now();
        let (kind, k) = match spec.kind {
            LinkKind::Subscription => ("sub", 0u32),
            LinkKind::Negotiation(Constraint::And) => ("and", 0),
            LinkKind::Negotiation(Constraint::AtLeast(k)) => ("atleast", k),
            LinkKind::Negotiation(Constraint::Exactly(k)) => ("exactly", k),
        };
        self.store.insert(
            T_LINK,
            vec![
                Value::from(id.raw()),
                Value::str(kind),
                Value::from(k),
                Value::str(match spec.status {
                    LinkStatus::Permanent => "perm",
                    LinkStatus::Tentative => "tent",
                }),
                Value::str(spec.entity.clone()),
                Value::from(spec.priority.level() as u32),
                Value::from(created.as_micros()),
                spec.expires
                    .map_or(Value::Null, |t| Value::from(t.as_micros())),
                Value::str(corr.clone()),
            ],
        )?;
        for (idx, r) in spec.refs.iter().enumerate() {
            self.store.insert(
                T_REF,
                vec![
                    Value::from(id.raw()),
                    Value::from(idx as u64),
                    Value::from(r.user.raw()),
                    Value::str(r.entity.clone()),
                    Value::str(r.action.clone()),
                ],
            )?;
        }
        if let Some((waits_on, group)) = spec.waits_on {
            self.store.insert(
                T_WAIT,
                vec![
                    Value::from(id.raw()),
                    Value::from(waits_on.raw()),
                    Value::from(spec.priority.level() as u32),
                    Value::from(group),
                ],
            )?;
        }
        self.events.publish_local(
            "link.created",
            &Value::map([
                ("id", Value::from(id.raw())),
                ("corr", Value::str(corr.clone())),
            ]),
        );
        Ok(Link {
            id,
            kind: spec.kind,
            status: spec.status,
            entity: spec.entity,
            refs: spec.refs,
            priority: spec.priority,
            created,
            expires: spec.expires,
            corr,
        })
    }

    fn link_from_row(&self, row: &syd_store::Row) -> SydResult<Link> {
        let id = LinkId::new(row.values[0].as_i64()? as u64);
        let kind_str = row.values[1].as_str()?;
        let k = row.values[2].as_i64()? as u32;
        let kind = match kind_str {
            "sub" => LinkKind::Subscription,
            "and" => LinkKind::Negotiation(Constraint::And),
            "atleast" => LinkKind::Negotiation(Constraint::AtLeast(k)),
            "exactly" => LinkKind::Negotiation(Constraint::Exactly(k)),
            other => return Err(SydError::Protocol(format!("bad stored kind `{other}`"))),
        };
        let status = match row.values[3].as_str()? {
            "perm" => LinkStatus::Permanent,
            _ => LinkStatus::Tentative,
        };
        let refs = self
            .store
            .query(T_REF)
            .filter(Predicate::Eq("link_id".into(), Value::from(id.raw())))
            .order_by("idx", true)
            .run()?
            .into_iter()
            .map(|r| {
                Ok(LinkRef {
                    user: UserId::new(r.values[2].as_i64()? as u64),
                    entity: r.values[3].as_str()?.to_owned(),
                    action: r.values[4].as_str()?.to_owned(),
                })
            })
            .collect::<SydResult<Vec<_>>>()?;
        Ok(Link {
            id,
            kind,
            status,
            entity: row.values[4].as_str()?.to_owned(),
            refs,
            priority: Priority::new(row.values[5].as_i64()? as u8),
            created: Timestamp::from_micros(row.values[6].as_i64()? as u64),
            expires: match &row.values[7] {
                Value::Null => None,
                v => Some(Timestamp::from_micros(v.as_i64()? as u64)),
            },
            corr: row.values[8].as_str()?.to_owned(),
        })
    }

    /// Fetches one link.
    pub fn get(&self, id: LinkId) -> SydResult<Option<Link>> {
        match self.store.get_by_key(T_LINK, &[Value::from(id.raw())])? {
            Some(row) => Ok(Some(self.link_from_row(&row)?)),
            None => Ok(None),
        }
    }

    /// All links in the database.
    pub fn all(&self) -> SydResult<Vec<Link>> {
        self.store
            .select(T_LINK, &Predicate::True)?
            .iter()
            .map(|row| self.link_from_row(row))
            .collect()
    }

    /// Links anchored on `entity`.
    pub fn on_entity(&self, entity: &str) -> SydResult<Vec<Link>> {
        self.store
            .select(T_LINK, &Predicate::Eq("entity".into(), Value::str(entity)))?
            .iter()
            .map(|row| self.link_from_row(row))
            .collect()
    }

    /// Links sharing a correlation id.
    pub fn by_corr(&self, corr: &str) -> SydResult<Vec<Link>> {
        self.store
            .select(T_LINK, &Predicate::Eq("corr".into(), Value::str(corr)))?
            .iter()
            .map(|row| self.link_from_row(row))
            .collect()
    }

    /// Number of stored links.
    pub fn count(&self) -> SydResult<usize> {
        self.store.count(T_LINK, &Predicate::True)
    }

    /// Snapshot of the `SyD_WaitingLink` table, for the invariant
    /// checker's waiting-queue audit (no lost or duplicate waiter).
    pub fn waiting(&self) -> SydResult<Vec<WaitingEntry>> {
        self.store
            .select(T_WAIT, &Predicate::True)?
            .iter()
            .map(|row| {
                Ok(WaitingEntry {
                    link: LinkId::new(row.values[0].as_i64()? as u64),
                    waits_on: LinkId::new(row.values[1].as_i64()? as u64),
                    priority: Priority::new(row.values[2].as_i64()? as u8),
                    group: row.values[3].as_i64()? as u64,
                })
            })
            .collect()
    }

    // ---- §4.2 op. 2: negotiated creation -----------------------------------

    /// Creates a link after negotiating availability with every referenced
    /// peer: "if and only if all the users are available … links will be
    /// created between the users; if any user is not available … no links
    /// will be created."
    ///
    /// Each peer's `syd.link/offer_link` consults its application-installed
    /// acceptor; on unanimous acceptance the forward link is installed
    /// locally and a back subscription link (entity → this user, action
    /// `back_action`) is installed at each peer under the same correlation
    /// id.
    pub fn create_negotiated(&self, spec: LinkSpec, back_action: &str) -> SydResult<Link> {
        let svc = link_service();
        // Phase 1: ask everyone.
        let calls: Vec<(UserId, Vec<Value>)> = spec
            .refs
            .iter()
            .map(|r| {
                (
                    r.user,
                    vec![
                        Value::str(r.entity.clone()),
                        Value::str(r.action.clone()),
                        Value::from(self.user.raw()),
                    ],
                )
            })
            .collect();
        let answers = self.engine.invoke_group_varied(&calls, &svc, "offer_link");
        let all_accept = answers
            .outcomes
            .iter()
            .all(|(_, r)| matches!(r, Ok(Value::Bool(true))));
        if !all_accept {
            let decliners: Vec<String> = answers
                .outcomes
                .iter()
                .filter(|(_, r)| !matches!(r, Ok(Value::Bool(true))))
                .map(|(u, _)| u.to_string())
                .collect();
            return Err(SydError::ConstraintFailed(format!(
                "link offer declined by {}",
                decliners.join(", ")
            )));
        }

        // Phase 2: install forward link locally…
        let mut spec = spec;
        if spec.corr.is_empty() {
            spec.corr = self.fresh_corr();
        }
        let refs = spec.refs.clone();
        let corr = spec.corr.clone();
        let forward = self.add_local(spec)?;

        // …and back subscription links at every peer.
        for r in &refs {
            let back = Link {
                id: LinkId::new(0),
                kind: LinkKind::Subscription,
                status: LinkStatus::Permanent,
                entity: r.entity.clone(),
                refs: vec![LinkRef::new(self.user, forward.entity.clone(), back_action)],
                priority: forward.priority,
                created: forward.created,
                expires: forward.expires,
                corr: corr.clone(),
            };
            self.engine
                .invoke(r.user, &svc, "install_link", vec![back.to_value()])?;
        }
        Ok(forward)
    }

    /// Installs a link received from a peer (`syd.link/install_link`).
    pub fn install_remote(&self, value: &Value) -> SydResult<LinkId> {
        let link = Link::from_value(value)?;
        let stored = self.add_local(LinkSpec {
            kind: link.kind,
            status: link.status,
            entity: link.entity,
            refs: link.refs,
            priority: link.priority,
            expires: link.expires,
            corr: link.corr,
            waits_on: None,
        })?;
        Ok(stored.id)
    }

    // ---- §4.2 ops 3 & 4: deletion with promotion and cascade ---------------

    /// Deletes a link: promotes the highest-priority waiting group, removes
    /// the local record, and cascades the deletion to every peer sharing
    /// the correlation id (§4.4 steps 1–7).
    pub fn delete(&self, id: LinkId, cascade: bool) -> SydResult<DeleteReport> {
        let Some(link) = self.get(id)? else {
            return Err(SydError::NoSuchLink(id));
        };
        // Step 1–2: promote waiting links.
        let mut report = DeleteReport {
            promoted: self.promote_waiters(id)?,
            ..DeleteReport::default()
        };

        // Step 3: delete the local link.
        self.delete_local_only(id)?;
        report.deleted.push(id);

        // Steps 4–7: cascade along the correlation id. The deleted link's
        // own refs seed the peer set (its local record is already gone).
        if cascade {
            report.cascaded_to =
                self.cascade_corr(&link.corr, vec![self.user.raw()], &link.refs)?;
        }

        self.events.publish_local(
            "link.deleted",
            &Value::map([
                ("id", Value::from(id.raw())),
                ("corr", Value::str(link.corr.clone())),
                ("cascade", Value::from(cascade)),
            ]),
        );
        Ok(report)
    }

    fn delete_local_only(&self, id: LinkId) -> SydResult<()> {
        self.store
            .delete(T_LINK, &Predicate::Eq("id".into(), Value::from(id.raw())))?;
        self.store.delete(
            T_REF,
            &Predicate::Eq("link_id".into(), Value::from(id.raw())),
        )?;
        self.store.delete(
            T_WAIT,
            &Predicate::Eq("link_id".into(), Value::from(id.raw())),
        )?;
        Ok(())
    }

    /// Deletes every local link with `corr` (without re-cascading to the
    /// users in `visited`) and forwards the cascade to remaining peers.
    pub fn delete_by_corr(&self, corr: &str, mut visited: Vec<u64>) -> SydResult<DeleteReport> {
        let mut report = DeleteReport::default();
        if !visited.contains(&self.user.raw()) {
            visited.push(self.user.raw());
        }
        let links = self.by_corr(corr)?;
        for link in &links {
            report.promoted.extend(self.promote_waiters(link.id)?);
            self.delete_local_only(link.id)?;
            report.deleted.push(link.id);
            // These deletions arrived over a cascade (§4.4) and are
            // forwarded below, so they count as cascading themselves.
            self.events.publish_local(
                "link.deleted",
                &Value::map([
                    ("id", Value::from(link.id.raw())),
                    ("corr", Value::str(corr)),
                    ("cascade", Value::from(true)),
                ]),
            );
        }
        // Forward the cascade to peers we haven't visited.
        let peers = lifecycle::cascade_peers(
            links.iter().flat_map(|l| l.refs.iter().map(|r| r.user)),
            &visited,
        );
        for peer in peers {
            visited.push(peer.raw());
            let result = self.engine.invoke(
                peer,
                &link_service(),
                "delete_by_corr",
                vec![
                    Value::str(corr),
                    Value::list(visited.iter().map(|&v| Value::from(v))),
                ],
            );
            if result.is_ok() {
                report.cascaded_to.push(peer);
            }
            // An unreachable peer keeps its links; its own expiry scan will
            // eventually collect them (the paper's mobile devices tolerate
            // exactly this kind of stale state).
        }
        Ok(report)
    }

    /// Cascade half of [`LinksModule::delete`]: contacts every peer of the
    /// correlation group — `seed_refs` (the refs of the already-deleted
    /// local link) plus the refs of any remaining local links with the
    /// same correlation id.
    fn cascade_corr(
        &self,
        corr: &str,
        mut visited: Vec<u64>,
        seed_refs: &[LinkRef],
    ) -> SydResult<Vec<UserId>> {
        let mut cascade_span = self
            .engine
            .node()
            .tracer()
            .span(syd_telemetry::names::SPAN_CASCADE);
        let mut all_refs: Vec<UserId> = seed_refs.iter().map(|r| r.user).collect();
        for link in self.by_corr(corr)? {
            all_refs.extend(link.refs.iter().map(|r| r.user));
        }
        let peers = lifecycle::cascade_peers(all_refs, &visited);
        let mut reached = Vec::new();
        for peer in peers {
            visited.push(peer.raw());
            let result = self.engine.invoke(
                peer,
                &link_service(),
                "delete_by_corr",
                vec![
                    Value::str(corr),
                    Value::list(visited.iter().map(|&v| Value::from(v))),
                ],
            );
            if result.is_ok() {
                reached.push(peer);
            }
            // An unreachable peer keeps its links; its own expiry scan will
            // eventually collect them (the paper's mobile devices tolerate
            // exactly this kind of stale state).
        }
        cascade_span.attr("reached", reached.len() as u64);
        Ok(reached)
    }

    /// §4.2 op. 3: "once L0 is deleted, the waiting link (or group of
    /// waiting links) with the highest priority is converted from tentative
    /// to permanent." Remaining waiters are re-anchored to the first
    /// promoted link so the queue survives.
    fn promote_waiters(&self, deleted: LinkId) -> SydResult<Vec<LinkId>> {
        let rows = self.store.select(
            T_WAIT,
            &Predicate::Eq("waits_on".into(), Value::from(deleted.raw())),
        )?;
        let mut waiting = Vec::with_capacity(rows.len());
        for row in &rows {
            waiting.push(WaitingEntry {
                link: LinkId::new(row.values[0].as_i64()? as u64),
                waits_on: deleted,
                priority: Priority::new(row.values[2].as_i64().unwrap_or(0) as u8),
                group: row.values[3].as_i64().unwrap_or(0) as u64,
            });
        }
        let Some(plan) = lifecycle::promotion_plan(&waiting) else {
            return Ok(Vec::new());
        };
        // §4.2 op. 3 invariant: the chosen group's priority is the maximum
        // over the whole waiting set — a lower-priority promotion means the
        // queue ordering broke.
        debug_assert!(
            {
                let best = plan
                    .promoted
                    .iter()
                    .map(|e| e.priority)
                    .max()
                    .unwrap_or(Priority::MIN);
                waiting.iter().all(|e| e.priority <= best)
            },
            "waiting-link promotion skipped a higher-priority waiter (anchor {deleted})"
        );

        let mut promoted = Vec::with_capacity(plan.promoted.len());
        for entry in &plan.promoted {
            let link_id = entry.link;
            self.store.update(
                T_LINK,
                &Predicate::Eq("id".into(), Value::from(link_id.raw())),
                &[("status".into(), Value::str("perm"))],
            )?;
            self.store.delete(
                T_WAIT,
                &Predicate::Eq("link_id".into(), Value::from(link_id.raw())),
            )?;
            self.events.publish_local(
                "link.promoted",
                &Value::map([
                    ("id", Value::from(link_id.raw())),
                    ("priority", Value::I64(i64::from(entry.priority.level()))),
                    ("group", Value::I64(entry.group as i64)),
                ]),
            );
            if let Some(link) = self.get(link_id)? {
                debug_assert_eq!(
                    link.status,
                    LinkStatus::Permanent,
                    "promoted link {link_id} still tentative"
                );
                if let Some(handler) = self.promotion.read().clone() {
                    handler(&link);
                }
            }
            promoted.push(link_id);
        }
        // Re-anchor the rest of the queue onto the first promoted link.
        if let Some(&new_anchor) = promoted.first() {
            for entry in &plan.remaining {
                self.store.update(
                    T_WAIT,
                    &Predicate::Eq("link_id".into(), Value::from(entry.link.raw())),
                    &[("waits_on".into(), Value::from(new_anchor.raw()))],
                )?;
            }
        }
        Ok(promoted)
    }

    // ---- §4.2 op. 5: method coupling ---------------------------------------

    /// Records that executing `service.src_method` locally must also invoke
    /// `dst_service.dst_method` on `dst_user`.
    pub fn couple_method(
        &self,
        service: &ServiceName,
        src_method: &str,
        dst_user: UserId,
        dst_service: &ServiceName,
        dst_method: &str,
    ) -> SydResult<()> {
        let id = self.next_link.fetch_add(1, Ordering::Relaxed);
        self.store.insert(
            T_METHOD,
            vec![
                Value::from(id),
                Value::str(service.as_str()),
                Value::str(src_method),
                Value::from(dst_user.raw()),
                Value::str(dst_service.as_str()),
                Value::str(dst_method),
            ],
        )?;
        Ok(())
    }

    /// Destinations coupled to `service.method`.
    pub fn coupled(
        &self,
        service: &ServiceName,
        method: &str,
    ) -> SydResult<Vec<(UserId, ServiceName, String)>> {
        self.store
            .select(
                T_METHOD,
                &Predicate::Eq("src_method".into(), Value::str(method)).and(Predicate::Eq(
                    "service".into(),
                    Value::str(service.as_str()),
                )),
            )?
            .iter()
            .map(|row| {
                Ok((
                    UserId::new(row.values[3].as_i64()? as u64),
                    ServiceName::new(row.values[4].as_str()?),
                    row.values[5].as_str()?.to_owned(),
                ))
            })
            .collect()
    }

    /// §4.2 op. 5: "the application programmer has to include a call to
    /// check whether the current method being executed is listed in the
    /// SyD_LinkMethod table" — this is that call. Invokes every coupled
    /// destination with `args`; returns per-destination outcomes.
    pub fn invoke_coupled(
        &self,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<Vec<(UserId, SydResult<Value>)>> {
        let targets = self.coupled(service, method)?;
        Ok(targets
            .into_iter()
            .map(|(user, dst_service, dst_method)| {
                let out = self
                    .engine
                    .invoke(user, &dst_service, &dst_method, args.clone());
                (user, out)
            })
            .collect())
    }

    // ---- §4.2 op. 6: expiry -------------------------------------------------

    /// Deletes every link whose expiry time has passed. Returns the ids
    /// deleted. Run periodically by the device's event handler.
    pub fn expire_scan(&self) -> SydResult<Vec<LinkId>> {
        let now = self.clock.now().as_micros() as i64;
        let expired = self
            .store
            .select(T_LINK, &Predicate::Le("expires".into(), Value::I64(now)))?;
        let mut deleted = Vec::new();
        for row in expired {
            let id = LinkId::new(row.values[0].as_i64()? as u64);
            // Expired links are torn down with full cascade, so the peers'
            // halves of the connection go too.
            if self.delete(id, true).is_ok() {
                self.events
                    .publish_local("link.expired", &Value::from(id.raw()));
                deleted.push(id);
            }
        }
        Ok(deleted)
    }

    // ---- trigger firing ------------------------------------------------------

    /// Fires every link anchored on `entity` in response to a local change
    /// — subscription links notify their references; negotiation links run
    /// the §4.3 protocol via `negotiator`. Tentative links do not fire.
    pub fn entity_changed(
        &self,
        entity: &str,
        payload: &Value,
        negotiator: &Negotiator,
    ) -> SydResult<Vec<FireResult>> {
        let mut results = Vec::new();
        for link in self.on_entity(entity)? {
            if link.status == LinkStatus::Tentative {
                continue;
            }
            results.push(self.fire_link(&link, payload, negotiator)?);
        }
        Ok(results)
    }

    /// Fires one link explicitly.
    pub fn fire_link(
        &self,
        link: &Link,
        payload: &Value,
        negotiator: &Negotiator,
    ) -> SydResult<FireResult> {
        match link.kind {
            LinkKind::Subscription => {
                let svc = link_service();
                let mut delivered = 0;
                let mut failed = 0;
                for r in &link.refs {
                    let out = self.engine.invoke(
                        r.user,
                        &svc,
                        "notify",
                        vec![
                            Value::str(r.entity.clone()),
                            Value::str(r.action.clone()),
                            payload.clone(),
                        ],
                    );
                    if out.is_ok() {
                        delivered += 1;
                    } else {
                        failed += 1;
                    }
                }
                Ok(FireResult::Notified {
                    link: link.id,
                    delivered,
                    failed,
                })
            }
            LinkKind::Negotiation(constraint) => {
                let participants: Vec<Participant> = link
                    .refs
                    .iter()
                    .map(|r| Participant::new(r.user, r.entity.clone(), payload.clone()))
                    .collect();
                let outcome = negotiator.negotiate(constraint, &participants)?;
                Ok(FireResult::Negotiated {
                    link: link.id,
                    outcome,
                })
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn link_value_round_trip() {
        let link = Link {
            id: LinkId::new(0),
            kind: LinkKind::Negotiation(Constraint::AtLeast(2)),
            status: LinkStatus::Tentative,
            entity: "slot:1:9".into(),
            refs: vec![
                LinkRef::new(UserId::new(2), "slot:1:9", "reserve"),
                LinkRef::new(UserId::new(3), "slot:1:9", "reserve"),
            ],
            priority: Priority::HIGH,
            created: Timestamp::from_micros(10),
            expires: Some(Timestamp::from_micros(99)),
            corr: "corr:1:1".into(),
        };
        let back = Link::from_value(&link.to_value()).unwrap();
        assert_eq!(back, link);
    }

    #[test]
    fn link_value_round_trip_no_expiry() {
        let link = Link {
            id: LinkId::new(0),
            kind: LinkKind::Subscription,
            status: LinkStatus::Permanent,
            entity: "e".into(),
            refs: vec![],
            priority: Priority::NORMAL,
            created: Timestamp::from_micros(0),
            expires: None,
            corr: "c".into(),
        };
        let back = Link::from_value(&link.to_value()).unwrap();
        assert_eq!(back, link);
    }

    #[test]
    fn bad_kind_rejected() {
        let mut v = Link {
            id: LinkId::new(0),
            kind: LinkKind::Subscription,
            status: LinkStatus::Permanent,
            entity: "e".into(),
            refs: vec![],
            priority: Priority::NORMAL,
            created: Timestamp::from_micros(0),
            expires: None,
            corr: "c".into(),
        }
        .to_value();
        if let Value::Map(m) = &mut v {
            m.insert("kind".into(), Value::str("bogus"));
        }
        assert!(Link::from_value(&v).is_err());
    }

    #[test]
    fn spec_builders() {
        let spec = LinkSpec::negotiation("e", Constraint::And, vec![])
            .with_priority(Priority::HIGH)
            .with_expiry(Timestamp::from_micros(5))
            .with_corr("shared")
            .waiting_on(LinkId::new(9), 3);
        assert_eq!(spec.priority, Priority::HIGH);
        assert_eq!(spec.expires, Some(Timestamp::from_micros(5)));
        assert_eq!(spec.corr, "shared");
        assert_eq!(spec.status, LinkStatus::Tentative);
        assert_eq!(spec.waits_on, Some((LinkId::new(9), 3)));
    }
}
