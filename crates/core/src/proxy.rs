//! Proxy support (§5.2): standing in for disconnected devices.
//!
//! "If a SyD calendar object A is down or disconnected, a proxy takes over
//! the place of A. Once A comes back up, A takes over the proxy. The proxy
//! and the SyD object act as a single entity for an outsider."
//!
//! A [`ProxyHost`] is a well-connected node (the paper imagines an
//! application server) that keeps one *replica store* per hosted user:
//!
//! * While the primary is connected it streams row-level sync operations
//!   to the proxy (installed by [`enable_replication`]), keeping the
//!   replica warm.
//! * The directory maps the user to the proxy whenever the primary is
//!   disconnected, so peers' requests land here transparently; the proxy
//!   serves them from the replica with application-registered methods and
//!   **journals** every local mutation.
//! * On reconnect the primary calls [`drain journal`](ProxyHost) via
//!   `syd.proxy/drain_journal`, replays the operations into its own store
//!   ("A takes over the proxy"), and resumes.
//!
//! Sync operations are row-granular upserts/deletes keyed by primary key,
//! so replay is idempotent and order-tolerant — the right semantics for
//! the paper's weakly connected mobile environment.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use syd_crypto::Authenticator;
use syd_net::{EventSink, Node, RequestHandler, Transport};
use syd_types::{Clock, NodeAddr, ServiceName, SydError, SydResult, UserId, Value};
use syd_wire::{EventMsg, Request};

use crate::device::DeviceRuntime;
use crate::directory::DirectoryClient;
use crate::listener::InvokeCtx;
use syd_store::{Predicate, Store, Trigger, TriggerEvent};
use syd_telemetry::names;

/// The proxy-internal service name.
pub fn proxy_service() -> ServiceName {
    ServiceName::new("syd.proxy")
}

/// A method served by a proxy on behalf of a hosted user; receives the
/// user's replica store.
pub type ProxyMethod = Arc<dyn Fn(&InvokeCtx, &Store, &[Value]) -> SydResult<Value> + Send + Sync>;

struct Replica {
    store: Store,
    /// Row ops performed while acting for the user, to be replayed by the
    /// primary on reconnect.
    journal: Mutex<Vec<Value>>,
    methods: HashMap<(String, String), ProxyMethod>,
}

thread_local! {
    /// Depth of sync applications on this thread. After-triggers run
    /// synchronously on the mutating thread, so a positive depth means
    /// "this mutation is replication, don't journal it" — precise, with
    /// no cross-thread races.
    static SYNC_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

struct ProxyInner {
    user: UserId,
    name: String,
    node: Node,
    directory: DirectoryClient,
    auth: Option<Arc<Authenticator>>,
    replicas: RwLock<HashMap<UserId, Arc<Replica>>>,
    #[allow(dead_code)]
    clock: Arc<dyn Clock>,
    /// Requests answered from a replica on behalf of a hosted user
    /// ("proxy.served").
    served: syd_telemetry::Counter,
}

/// A proxy host. Cloning shares the host.
#[derive(Clone)]
pub struct ProxyHost {
    inner: Arc<ProxyInner>,
}

impl ProxyHost {
    /// Starts a proxy host node registered in the directory as user
    /// `user`/`name` (so it can make authenticated outgoing calls).
    pub fn new(
        net: &dyn Transport,
        dir_addr: NodeAddr,
        user: UserId,
        name: &str,
        auth: Option<Arc<Authenticator>>,
        clock: Arc<dyn Clock>,
    ) -> SydResult<ProxyHost> {
        let node = Node::spawn_on(net)?;
        let directory = DirectoryClient::new(node.clone(), dir_addr);
        directory.register(user, name, node.addr())?;
        let served = node.metrics().counter(names::PROXY_SERVED);
        let inner = Arc::new(ProxyInner {
            user,
            name: name.to_owned(),
            node,
            directory,
            auth,
            replicas: RwLock::new(HashMap::new()),
            clock,
            served,
        });
        let host = ProxyHost {
            inner: Arc::clone(&inner),
        };
        let handler_inner = Arc::clone(&inner);
        inner.node.set_handler(
            Arc::new(move |from, req: Request| serve(&handler_inner, from, &req))
                as Arc<dyn RequestHandler>,
        );
        let sink_inner = Arc::clone(&inner);
        inner
            .node
            .set_event_sink(Arc::new(move |_from, ev: EventMsg| {
                if ev.topic == "proxy.sync" {
                    let _ = apply_sync_event(&sink_inner, &ev.payload);
                }
            }) as Arc<dyn EventSink>);
        Ok(host)
    }

    /// The proxy's own user id.
    pub fn user(&self) -> UserId {
        self.inner.user
    }

    /// The proxy's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The proxy's address.
    pub fn addr(&self) -> NodeAddr {
        self.inner.node.addr()
    }

    /// The proxy's node.
    pub fn node(&self) -> &Node {
        &self.inner.node
    }

    /// Begins hosting `user`: creates the replica store, lets `setup`
    /// create tables and register service methods, installs journaling,
    /// and registers the proxy mapping in the directory.
    ///
    /// If the prototype's embedded device "does not have the capability of
    /// using a database server, the database server could potentially be
    /// placed on the proxy" (§5.2) — `setup` is exactly that hook.
    pub fn host_user(
        &self,
        user: UserId,
        setup: impl FnOnce(&Store) -> SydResult<Vec<((ServiceName, String), ProxyMethod)>>,
    ) -> SydResult<()> {
        let store = Store::new();
        let methods_list = setup(&store)?;
        let mut methods = HashMap::new();
        for ((service, method), handler) in methods_list {
            methods.insert((service.as_str().to_owned(), method), handler);
        }
        let replica = Arc::new(Replica {
            store: store.clone(),
            journal: Mutex::new(Vec::new()),
            methods,
        });
        // Journal every mutation that is not a sync application.
        for table in store.table_names() {
            let journal_replica = Arc::clone(&replica);
            let table_name = table.clone();
            store.add_trigger(Trigger::after(
                format!("proxy-journal-{table}"),
                &table,
                vec![
                    TriggerEvent::Insert,
                    TriggerEvent::Update,
                    TriggerEvent::Delete,
                ],
                move |ctx| {
                    if SYNC_DEPTH.with(std::cell::Cell::get) > 0 {
                        return Ok(());
                    }
                    let op = row_change_to_op(&table_name, ctx);
                    journal_replica.journal.lock().push(op);
                    Ok(())
                },
            ))?;
        }
        self.inner.replicas.write().insert(user, replica);
        self.inner.directory.register_proxy(user, self.addr())?;
        Ok(())
    }

    /// Stops hosting `user` (directory mapping removed; replica dropped).
    pub fn drop_user(&self, user: UserId) -> SydResult<()> {
        self.inner.replicas.write().remove(&user);
        self.inner.directory.clear_proxy(user)
    }

    /// Direct access to a hosted user's replica store (tests/diagnostics).
    pub fn replica_store(&self, user: UserId) -> Option<Store> {
        self.inner
            .replicas
            .read()
            .get(&user)
            .map(|r| r.store.clone())
    }

    /// Number of journaled (un-drained) operations for `user`.
    pub fn journal_len(&self, user: UserId) -> usize {
        self.inner
            .replicas
            .read()
            .get(&user)
            .map_or(0, |r| r.journal.lock().len())
    }
}

fn serve(inner: &Arc<ProxyInner>, from: NodeAddr, req: &Request) -> SydResult<Value> {
    // §5.4 applies at the proxy too.
    let ctx = match &inner.auth {
        Some(auth) => {
            let caller = auth.verify(&req.credentials)?;
            InvokeCtx {
                caller,
                from,
                authenticated: true,
            }
        }
        None => InvokeCtx {
            caller: req.caller,
            from,
            authenticated: false,
        },
    };

    // Proxy-internal service.
    if req.service.as_str() == "syd.proxy" {
        return match req.method.as_str() {
            // drain_journal(user) -> [ops]; clears the journal.
            "drain_journal" => {
                let user = UserId::new(
                    req.args
                        .first()
                        .ok_or_else(|| SydError::Protocol("drain_journal needs user".into()))?
                        .as_i64()? as u64,
                );
                let replicas = inner.replicas.read();
                let replica = replicas
                    .get(&user)
                    .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
                let ops: Vec<Value> = replica.journal.lock().drain(..).collect();
                Ok(Value::List(ops))
            }
            // sync(user, op) -> Null; request-based alternative to the
            // fire-and-forget event (used by tests needing confirmation).
            "sync" => {
                let payload = req
                    .args
                    .first()
                    .ok_or_else(|| SydError::Protocol("sync needs op".into()))?;
                apply_sync_event(inner, payload)?;
                Ok(Value::Null)
            }
            other => Err(SydError::NoSuchService(proxy_service(), other.to_owned())),
        };
    }

    // Application service on a hosted user's replica, routed by target.
    let replicas = inner.replicas.read();
    let replica = replicas.get(&req.target).ok_or_else(|| {
        SydError::NotRegistered(format!(
            "{} (not hosted by proxy {})",
            req.target, inner.name
        ))
    })?;
    let replica = Arc::clone(replica);
    drop(replicas);
    let handler = replica
        .methods
        .get(&(req.service.as_str().to_owned(), req.method.clone()))
        .cloned()
        .ok_or_else(|| SydError::NoSuchService(req.service.clone(), req.method.clone()))?;
    inner.served.inc();
    handler(&ctx, &replica.store, &req.args)
}

/// Serializes one row change as a sync/journal operation.
// Trigger contract: insert/update always carries the new row, delete the
// old one — the store populates both before firing.
#[allow(clippy::expect_used)]
fn row_change_to_op(table: &str, ctx: &syd_store::TriggerCtx<'_>) -> Value {
    let (kind, row): (&str, &[Value]) = match ctx.event {
        TriggerEvent::Insert | TriggerEvent::Update => {
            ("upsert", ctx.new.expect("insert/update has new row"))
        }
        TriggerEvent::Delete => ("delete", ctx.old.expect("delete has old row")),
    };
    let key = ctx.schema.key_of(row);
    Value::map([
        ("user", Value::from(0u64)), // filled by the sender when pushing
        ("table", Value::str(table)),
        ("kind", Value::str(kind)),
        ("key", Value::list(key)),
        ("row", Value::list(row.to_vec())),
    ])
}

/// Applies one sync operation to the matching replica.
fn apply_sync_event(inner: &Arc<ProxyInner>, payload: &Value) -> SydResult<()> {
    let user = UserId::new(payload.get("user")?.as_i64()? as u64);
    let replicas = inner.replicas.read();
    let replica = replicas
        .get(&user)
        .ok_or_else(|| SydError::NotRegistered(user.to_string()))?;
    let replica = Arc::clone(replica);
    drop(replicas);
    SYNC_DEPTH.with(|d| d.set(d.get() + 1));
    let result = apply_op_to_store(&replica.store, payload);
    SYNC_DEPTH.with(|d| d.set(d.get() - 1));
    result
}

/// Applies one row operation (`upsert`/`delete` by primary key) to any
/// store. Used by the proxy (sync path) and by the primary (journal
/// replay). Idempotent.
pub fn apply_op_to_store(store: &Store, op: &Value) -> SydResult<()> {
    let table = op.get("table")?.as_str()?;
    let kind = op.get("kind")?.as_str()?;
    let key = op.get("key")?.as_list()?;
    let schema = store.schema_of(table)?;
    let key_pred = |key: &[Value]| -> Predicate {
        let mut conj = Vec::new();
        for (i, &col_idx) in schema.primary_key.iter().enumerate() {
            conj.push(Predicate::Eq(
                schema.columns[col_idx].name.clone(),
                key[i].clone(),
            ));
        }
        Predicate::And(conj)
    };
    match kind {
        "upsert" => {
            let row = op.get("row")?.as_list()?.to_vec();
            if !key.is_empty() && store.get_by_key(table, key)?.is_some() {
                store.delete(table, &key_pred(key))?;
            }
            store.insert(table, row)?;
            Ok(())
        }
        "delete" => {
            if key.is_empty() {
                return Err(SydError::Protocol(
                    "delete sync op needs a primary key".into(),
                ));
            }
            store.delete(table, &key_pred(key))?;
            Ok(())
        }
        other => Err(SydError::Protocol(format!("bad sync op kind `{other}`"))),
    }
}

/// Installs replication from `device`'s store to a proxy for the listed
/// tables: every row change is pushed as a fire-and-forget `proxy.sync`
/// event. Call after the proxy's [`ProxyHost::host_user`] so the replica
/// tables exist.
pub fn enable_replication(
    device: &DeviceRuntime,
    proxy_addr: NodeAddr,
    tables: &[&str],
) -> SydResult<()> {
    for table in tables {
        let node = device.node().clone();
        let user = device.user();
        let table_name = (*table).to_owned();
        device.store().add_trigger(Trigger::after(
            format!("proxy-replication-{table}"),
            *table,
            vec![
                TriggerEvent::Insert,
                TriggerEvent::Update,
                TriggerEvent::Delete,
            ],
            move |ctx| {
                let mut op = row_change_to_op(&table_name, ctx);
                if let Value::Map(m) = &mut op {
                    m.insert("user".into(), Value::from(user.raw()));
                }
                // Fire-and-forget: replication loss is tolerated, the
                // journal/snapshot path reconciles on reconnect.
                let _ = node.publish_event(proxy_addr, "proxy.sync", op);
                Ok(())
            },
        ))?;
    }
    Ok(())
}

/// Replays a drained journal into the primary's store ("A takes over the
/// proxy"). Returns the number of operations applied.
pub fn replay_journal(store: &Store, ops: &[Value]) -> SydResult<usize> {
    let mut applied = 0;
    for op in ops {
        apply_op_to_store(store, op)?;
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::env::SydEnv;
    use syd_net::NetConfig;
    use syd_store::{Column, ColumnType, Schema};

    fn slots_schema() -> Schema {
        Schema::new(
            "slots",
            vec![
                Column::required("day", ColumnType::I64),
                Column::required("status", ColumnType::Str),
            ],
            &["day"],
        )
        .unwrap()
    }

    fn read_method() -> ProxyMethod {
        Arc::new(|_ctx: &InvokeCtx, store: &Store, args: &[Value]| {
            let day = args[0].as_i64()?;
            match store.get_by_key("slots", &[Value::I64(day)])? {
                Some(row) => Ok(row.values[1].clone()),
                None => Ok(Value::Null),
            }
        })
    }

    fn write_method() -> ProxyMethod {
        Arc::new(|_ctx: &InvokeCtx, store: &Store, args: &[Value]| {
            let day = args[0].as_i64()?;
            let status = args[1].as_str()?;
            if store.get_by_key("slots", &[Value::I64(day)])?.is_some() {
                store.update(
                    "slots",
                    &Predicate::Eq("day".into(), Value::I64(day)),
                    &[("status".into(), Value::str(status))],
                )?;
            } else {
                store.insert("slots", vec![Value::I64(day), Value::str(status)])?;
            }
            Ok(Value::Null)
        })
    }

    /// Full §5.2 lifecycle: replicate → disconnect → serve via proxy →
    /// journal writes → reconnect → replay.
    #[test]
    fn proxy_takeover_and_recovery() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let phil = env.device("phil", "").unwrap();
        let andy = env.device("andy", "").unwrap();
        let proxy = env.proxy("asp-proxy", "").unwrap();
        let svc = ServiceName::new("calendar");

        // Phil's primary store and service.
        phil.store().create_table(slots_schema()).unwrap();
        {
            let store = phil.store().clone();
            phil.register_service(
                &svc,
                "status",
                Arc::new(move |_ctx, args: &[Value]| {
                    let day = args[0].as_i64()?;
                    match store.get_by_key("slots", &[Value::I64(day)])? {
                        Some(row) => Ok(row.values[1].clone()),
                        None => Ok(Value::Null),
                    }
                }),
            )
            .unwrap();
        }

        // Proxy hosts phil: same schema, read+write methods.
        proxy
            .host_user(phil.user(), |store| {
                store.create_table(slots_schema())?;
                Ok(vec![
                    ((svc.clone(), "status".to_owned()), read_method()),
                    ((svc.clone(), "set".to_owned()), write_method()),
                ])
            })
            .unwrap();
        enable_replication(&phil, proxy.addr(), &["slots"]).unwrap();

        // Live replication: phil writes, replica follows.
        phil.store()
            .insert("slots", vec![Value::I64(1), Value::str("free")])
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let replicated = proxy
                .replica_store(phil.user())
                .unwrap()
                .get_by_key("slots", &[Value::I64(1)])
                .unwrap()
                .is_some();
            if replicated {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "replication lag");
            std::thread::yield_now();
        }
        // Replication application is NOT journaled.
        assert_eq!(proxy.journal_len(phil.user()), 0);

        // Phil drops off the network; andy's request transparently reaches
        // the proxy.
        phil.disconnect().unwrap();
        let status = andy
            .engine()
            .invoke(phil.user(), &svc, "status", vec![Value::I64(1)])
            .unwrap();
        assert_eq!(status, Value::str("free"));

        // Andy writes through the proxy; the write is journaled.
        andy.engine()
            .invoke(
                phil.user(),
                &svc,
                "set",
                vec![Value::I64(1), Value::str("reserved")],
            )
            .unwrap();
        assert_eq!(proxy.journal_len(phil.user()), 1);

        // Phil reconnects and takes over: drain + replay.
        phil.reconnect().unwrap();
        let ops = phil
            .node()
            .call(
                proxy.addr(),
                &proxy_service(),
                "drain_journal",
                vec![Value::from(phil.user().raw())],
            )
            .unwrap();
        let ops = ops.into_list().unwrap();
        assert_eq!(ops.len(), 1);
        let applied = replay_journal(phil.store(), &ops).unwrap();
        assert_eq!(applied, 1);
        let row = phil
            .store()
            .get_by_key("slots", &[Value::I64(1)])
            .unwrap()
            .unwrap();
        assert_eq!(row.values[1], Value::str("reserved"));
        assert_eq!(proxy.journal_len(phil.user()), 0);

        // And requests now go to the primary again.
        let status = andy
            .engine()
            .invoke(phil.user(), &svc, "status", vec![Value::I64(1)])
            .unwrap();
        assert_eq!(status, Value::str("reserved"));
    }

    #[test]
    fn proxy_rejects_unhosted_users() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let phil = env.device("phil", "").unwrap();
        let proxy = env.proxy("proxy", "").unwrap();
        let err = phil
            .node()
            .call_async_to(
                proxy.addr(),
                UserId::new(99),
                &ServiceName::new("calendar"),
                "status",
                vec![],
            )
            .unwrap()
            .wait(std::time::Duration::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, SydError::NotRegistered(_)), "{err}");
    }

    #[test]
    fn drop_user_clears_mapping() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let phil = env.device("phil", "").unwrap();
        let proxy = env.proxy("proxy", "").unwrap();
        proxy
            .host_user(phil.user(), |store| {
                store.create_table(slots_schema())?;
                Ok(vec![])
            })
            .unwrap();
        let rec = env.directory_client().describe(phil.user()).unwrap();
        assert_eq!(rec.proxy, Some(proxy.addr()));
        proxy.drop_user(phil.user()).unwrap();
        let rec = env.directory_client().describe(phil.user()).unwrap();
        assert_eq!(rec.proxy, None);
        assert!(proxy.replica_store(phil.user()).is_none());
    }

    #[test]
    fn sync_request_path_applies_ops() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let phil = env.device("phil", "").unwrap();
        let proxy = env.proxy("proxy", "").unwrap();
        proxy
            .host_user(phil.user(), |store| {
                store.create_table(slots_schema())?;
                Ok(vec![])
            })
            .unwrap();
        let op = Value::map([
            ("user", Value::from(phil.user().raw())),
            ("table", Value::str("slots")),
            ("kind", Value::str("upsert")),
            ("key", Value::list([Value::I64(7)])),
            ("row", Value::list([Value::I64(7), Value::str("busy")])),
        ]);
        phil.node()
            .call(proxy.addr(), &proxy_service(), "sync", vec![op.clone()])
            .unwrap();
        // Idempotent: applying the same op twice keeps one row.
        phil.node()
            .call(proxy.addr(), &proxy_service(), "sync", vec![op])
            .unwrap();
        let replica = proxy.replica_store(phil.user()).unwrap();
        assert_eq!(replica.row_count("slots").unwrap(), 1);
        assert_eq!(
            replica
                .get_by_key("slots", &[Value::I64(7)])
                .unwrap()
                .unwrap()
                .values[1],
            Value::str("busy")
        );
    }

    #[test]
    fn apply_op_rejects_garbage() {
        let store = Store::new();
        store.create_table(slots_schema()).unwrap();
        let bad = Value::map([
            ("table", Value::str("slots")),
            ("kind", Value::str("explode")),
            ("key", Value::list([])),
            ("row", Value::list([])),
        ]);
        assert!(apply_op_to_store(&store, &bad).is_err());
    }
}
