//! The pure §4.2 link-lifecycle transition core.
//!
//! Waiting-link promotion (op. 3) and cascade-delete peer selection
//! (op. 4) as side-effect-free functions over plain data, shared by the
//! runtime ([`super::LinksModule`]) and the `syd-model` exhaustive model
//! checker — one implementation, no drift between what runs and what is
//! verified.

use syd_types::UserId;

use super::WaitingEntry;

/// What promoting the waiters of a deleted link does (§4.2 op. 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromotionPlan {
    /// The winning waiting group.
    pub group: u64,
    /// Entries promoted tentative → permanent, in input order.
    pub promoted: Vec<WaitingEntry>,
    /// Entries left queued; they must be re-anchored onto the first
    /// promoted link so the queue survives the anchor's deletion.
    pub remaining: Vec<WaitingEntry>,
}

/// §4.2 op. 3: "once L0 is deleted, the waiting link (or group of
/// waiting links) with the highest priority is converted from tentative
/// to permanent." The winning group is the one containing the
/// highest-priority entry; ties break toward the lowest group id
/// (FIFO-ish, since groups are numbered in arrival order). Returns
/// `None` when nothing is waiting.
pub fn promotion_plan(waiting: &[WaitingEntry]) -> Option<PromotionPlan> {
    let best = waiting
        .iter()
        .max_by_key(|entry| (entry.priority, std::cmp::Reverse(entry.group)))?;
    let group = best.group;
    let (promoted, remaining) = waiting
        .iter()
        .copied()
        .partition(|entry| entry.group == group);
    Some(PromotionPlan {
        group,
        promoted,
        remaining,
    })
}

/// §4.2 op. 4 peer selection for a cascade delete: every referenced user
/// not already visited by the cascade, deduplicated, in ascending order
/// (the deterministic fan-out order the runtime uses). `visited` carries
/// raw user ids because that is what travels on the wire.
pub fn cascade_peers(refs: impl IntoIterator<Item = UserId>, visited: &[u64]) -> Vec<UserId> {
    let mut peers: Vec<UserId> = refs
        .into_iter()
        .filter(|u| !visited.contains(&u.raw()))
        .collect();
    peers.sort();
    peers.dedup();
    peers
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_types::{LinkId, Priority};

    fn entry(link: u64, priority: u8, group: u64) -> WaitingEntry {
        WaitingEntry {
            link: LinkId::new(link),
            waits_on: LinkId::new(1),
            priority: Priority(priority),
            group,
        }
    }

    #[test]
    fn empty_queue_promotes_nothing() {
        assert_eq!(promotion_plan(&[]), None);
    }

    #[test]
    fn highest_priority_group_wins_whole() {
        let waiting = [entry(2, 200, 1), entry(3, 50, 1), entry(4, 100, 2)];
        let plan = promotion_plan(&waiting).unwrap();
        assert_eq!(plan.group, 1);
        // The whole group is promoted, even its low-priority member.
        assert_eq!(plan.promoted, vec![entry(2, 200, 1), entry(3, 50, 1)]);
        assert_eq!(plan.remaining, vec![entry(4, 100, 2)]);
    }

    #[test]
    fn priority_tie_breaks_to_lowest_group() {
        let waiting = [entry(4, 100, 2), entry(2, 100, 1)];
        let plan = promotion_plan(&waiting).unwrap();
        assert_eq!(plan.group, 1);
        assert_eq!(plan.promoted, vec![entry(2, 100, 1)]);
    }

    #[test]
    fn cascade_skips_visited_and_dedupes() {
        let refs = [3, 2, 5, 2, 1].map(UserId::new);
        let peers = cascade_peers(refs, &[1, 5]);
        assert_eq!(peers, vec![UserId::new(2), UserId::new(3)]);
    }
}
