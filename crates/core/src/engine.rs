//! SyDEngine: single and group remote invocation with result aggregation
//! (§3.1c).
//!
//! "SyDEngine allows users to execute single or group services remotely via
//! SyDListener and aggregate results." Targets are *users*, not addresses:
//! the engine resolves each user through the SyDDirectory on every call
//! (with a small positive cache invalidated on failure), which is what
//! makes SyD applications location transparent and lets proxies substitute
//! for disconnected devices mid-conversation.
//!
//! Group invocation sends all requests before collecting any response, so
//! a group of `n` costs one round-trip of latency, not `n`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use syd_net::{CallOptions, Node};
use syd_telemetry::Histogram;
use syd_types::{NodeAddr, ServiceName, SydError, SydResult, UserId, Value};

use crate::directory::DirectoryClient;
use crate::qos::QosMonitor;

/// Result of a group invocation: per-user outcomes in request order.
#[derive(Debug)]
pub struct GroupResult {
    /// `(user, outcome)` for every target, in the order given.
    pub outcomes: Vec<(UserId, SydResult<Value>)>,
}

impl GroupResult {
    /// Users that answered successfully, with their values.
    pub fn oks(&self) -> impl Iterator<Item = (UserId, &Value)> {
        self.outcomes
            .iter()
            .filter_map(|(u, r)| r.as_ref().ok().map(|v| (*u, v)))
    }

    /// Users that failed, with their errors.
    pub fn errs(&self) -> impl Iterator<Item = (UserId, &SydError)> {
        self.outcomes
            .iter()
            .filter_map(|(u, r)| r.as_ref().err().map(|e| (*u, e)))
    }

    /// Number of successful outcomes.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// True iff every target succeeded.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.outcomes.len()
    }

    /// Aggregates successful values into a list (the engine's "result
    /// aggregation" service), preserving target order.
    pub fn aggregate(&self) -> Value {
        Value::list(self.oks().map(|(_, v)| v.clone()))
    }
}

/// The invocation engine bound to one device's node.
#[derive(Clone)]
pub struct SydEngine {
    node: Node,
    directory: DirectoryClient,
    /// Positive lookup cache: user -> address. Invalidated per-user when a
    /// call through it fails, so proxy switchovers are picked up.
    cache: Arc<Mutex<HashMap<UserId, NodeAddr>>>,
    opts: CallOptions,
    qos: Option<Arc<QosMonitor>>,
    /// End-to-end invoke latency ("engine.invoke"), resolve included.
    invoke_hist: Histogram,
}

impl SydEngine {
    /// Builds an engine over `node`, resolving names with `directory`.
    pub fn new(node: Node, directory: DirectoryClient) -> SydEngine {
        let invoke_hist = node.metrics().histogram("engine.invoke");
        SydEngine {
            node,
            directory,
            cache: Arc::new(Mutex::new(HashMap::new())),
            opts: CallOptions::default(),
            qos: None,
            invoke_hist,
        }
    }

    /// Attaches a QoS monitor: every `invoke` is observed, and
    /// [`SydEngine::invoke_with_deadline`] gains admission control.
    pub fn with_qos(mut self, qos: Arc<QosMonitor>) -> SydEngine {
        self.qos = Some(qos);
        self
    }

    /// The attached QoS monitor, if any.
    pub fn qos(&self) -> Option<&Arc<QosMonitor>> {
        self.qos.as_ref()
    }

    /// Replaces the default call options (builder style).
    pub fn with_options(mut self, opts: CallOptions) -> SydEngine {
        self.opts = opts;
        self
    }

    /// The directory client this engine resolves through.
    pub fn directory(&self) -> &DirectoryClient {
        &self.directory
    }

    /// The underlying network node.
    pub fn node(&self) -> &Node {
        &self.node
    }

    fn resolve(&self, user: UserId) -> SydResult<NodeAddr> {
        if let Some(&addr) = self.cache.lock().get(&user) {
            return Ok(addr);
        }
        let (addr, is_proxy) = self.directory.lookup(user)?;
        // Proxy addresses are never cached: while a user is proxied, every
        // call re-resolves, so the moment the primary reconnects peers
        // switch back to it ("once A comes back up, A takes over the
        // proxy", §5.2).
        if !is_proxy {
            self.cache.lock().insert(user, addr);
        }
        Ok(addr)
    }

    fn invalidate(&self, user: UserId) {
        self.cache.lock().remove(&user);
    }

    /// Resolves many users at once, overlapping the directory lookups for
    /// cache misses so a cold group call costs one lookup round trip, not
    /// `n`.
    fn resolve_many(&self, users: &[UserId]) -> Vec<(UserId, SydResult<NodeAddr>)> {
        let mut out: Vec<(UserId, Option<SydResult<NodeAddr>>)> = Vec::with_capacity(users.len());
        let mut pending: Vec<(usize, syd_net::PendingCall)> = Vec::new();
        {
            let cache = self.cache.lock();
            for &user in users {
                if let Some(&addr) = cache.get(&user) {
                    out.push((user, Some(Ok(addr))));
                } else {
                    out.push((user, None));
                }
            }
            drop(cache);
            for (i, &user) in users.iter().enumerate() {
                if out[i].1.is_some() {
                    continue;
                }
                let sent = self.node.call_async(
                    self.directory.dir_addr(),
                    &crate::directory::dir_service(),
                    "lookup",
                    vec![Value::from(user.raw())],
                );
                match sent {
                    Ok(call) => pending.push((i, call)),
                    Err(e) => out[i].1 = Some(Err(e)),
                }
            }
        }
        for (i, call) in pending {
            let result = call.wait(self.opts.timeout).and_then(|v| {
                let addr = NodeAddr::new(v.get("addr")?.as_i64()? as u64);
                let is_proxy = v.get("is_proxy")?.as_bool()?;
                Ok((addr, is_proxy))
            });
            let result = match result {
                Ok((addr, is_proxy)) => {
                    if !is_proxy {
                        self.cache.lock().insert(users[i], addr);
                    }
                    Ok(addr)
                }
                // The overlapped fast path lost its message (lossy
                // network): fall back to the retrying directory client
                // so a single drop cannot fail the whole group member.
                Err(err) if err.is_transient() => {
                    self.directory.lookup(users[i]).map(|(addr, is_proxy)| {
                        if !is_proxy {
                            self.cache.lock().insert(users[i], addr);
                        }
                        addr
                    })
                }
                Err(e) => Err(e),
            };
            out[i].1 = Some(result);
        }
        out.into_iter()
            .map(|(user, r)| (user, r.expect("every slot filled")))
            .collect()
    }

    /// One blocking call to a resolved address, with the logical target
    /// user stamped on the request (proxy routing) and this engine's
    /// deadline/retry options applied.
    fn call_at(
        &self,
        addr: NodeAddr,
        target: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<Value> {
        let mut attempts = 0;
        loop {
            let pending = self
                .node
                .call_async_to(addr, target, service, method, args.clone())?;
            match pending.wait(self.opts.timeout) {
                Ok(v) => return Ok(v),
                Err(err) if err.is_transient() && attempts < self.opts.retries => attempts += 1,
                Err(err) => return Err(err),
            }
        }
    }

    /// Invokes `service.method(args)` on `user`'s device (or its proxy).
    ///
    /// On a transient failure the engine re-resolves the user once — this
    /// is the moment a proxy silently replaces a disconnected device.
    pub fn invoke(
        &self,
        user: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<Value> {
        let started = std::time::Instant::now();
        let result = self.invoke_inner(user, service, method, args);
        self.invoke_hist.record_duration(started.elapsed());
        if let Some(qos) = &self.qos {
            qos.observe(user, service, started.elapsed(), result.is_ok());
        }
        result
    }

    /// QoS-aware invocation (§3.2, companion paper \[4\]): refuse targets
    /// whose observed latency cannot plausibly meet `deadline`, and bound
    /// the call by it. Requires [`SydEngine::with_qos`].
    pub fn invoke_with_deadline(
        &self,
        user: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
        deadline: Duration,
    ) -> SydResult<Value> {
        if let Some(qos) = &self.qos {
            qos.admit(user, service, deadline)?;
        }
        let bounded = self.clone().with_options(
            CallOptions::new().with_timeout(deadline).with_retries(self.opts.retries),
        );
        let started = std::time::Instant::now();
        let result = bounded.invoke_inner(user, service, method, args);
        self.invoke_hist.record_duration(started.elapsed());
        if let Some(qos) = &self.qos {
            qos.observe(user, service, started.elapsed(), result.is_ok());
        }
        result
    }

    fn invoke_inner(
        &self,
        user: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<Value> {
        let addr = self.resolve(user)?;
        match self.call_at(addr, user, service, method, args.clone()) {
            Ok(v) => Ok(v),
            Err(err) if err.is_transient() || matches!(err, SydError::Unreachable(_)) => {
                // Re-resolve: the directory may now point at a proxy (or at
                // the primary again after recovery).
                self.invalidate(user);
                let fresh = self.resolve(user)?;
                if fresh == addr {
                    return Err(err);
                }
                self.call_at(fresh, user, service, method, args)
            }
            Err(err) => Err(err),
        }
    }

    /// Invokes the same method on every user concurrently and collects
    /// per-user outcomes.
    pub fn invoke_group(
        &self,
        users: &[UserId],
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> GroupResult {
        // Fan out: resolve (overlapped) + send every request first.
        let resolved = self.resolve_many(users);
        let mut pending = Vec::with_capacity(users.len());
        for (user, addr) in resolved {
            let sent = addr.and_then(|addr| {
                self.node
                    .call_async_to(addr, user, service, method, args.clone())
            });
            pending.push((user, sent));
        }
        // Collect.
        let outcomes = pending
            .into_iter()
            .map(|(user, sent)| {
                let outcome = match sent {
                    Ok(call) => match call.wait(self.opts.timeout) {
                        Ok(v) => Ok(v),
                        Err(err) if err.is_transient() => {
                            // One re-resolve retry, as in `invoke`.
                            self.invalidate(user);
                            match self.resolve(user) {
                                Ok(addr) => self.call_at(
                                    addr,
                                    user,
                                    service,
                                    method,
                                    args.clone(),
                                ),
                                Err(e) => Err(e),
                            }
                        }
                        Err(err) => Err(err),
                    },
                    Err(err) => Err(err),
                };
                (user, outcome)
            })
            .collect();
        GroupResult { outcomes }
    }

    /// Invokes a method on every member of a *named directory group* —
    /// "user/object groups can also be formed on SyDDirectory" (§3.1a) and
    /// the engine "execute\[s\] a service on a group of objects".
    pub fn invoke_group_by_name(
        &self,
        group: &str,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<GroupResult> {
        let group_id = self.directory.group_by_name(group)?;
        let members = self.directory.group_members(group_id)?;
        Ok(self.invoke_group(&members, service, method, args))
    }

    /// Like [`SydEngine::invoke_group`] but with per-user arguments — the
    /// negotiation protocol marks each participant's *own* entity, so every
    /// request differs.
    pub fn invoke_group_varied(
        &self,
        calls: &[(UserId, Vec<Value>)],
        service: &ServiceName,
        method: &str,
    ) -> GroupResult {
        let users: Vec<UserId> = calls.iter().map(|(u, _)| *u).collect();
        let resolved = self.resolve_many(&users);
        let mut pending = Vec::with_capacity(calls.len());
        for ((user, args), (_, addr)) in calls.iter().zip(resolved) {
            let sent = addr.and_then(|addr| {
                self.node
                    .call_async_to(addr, *user, service, method, args.clone())
            });
            pending.push((*user, sent));
        }
        let outcomes = pending
            .into_iter()
            .map(|(user, sent)| {
                let outcome = match sent {
                    Ok(call) => call.wait(self.opts.timeout),
                    Err(err) => Err(err),
                };
                if outcome.is_err() {
                    self.invalidate(user);
                }
                (user, outcome)
            })
            .collect();
        GroupResult { outcomes }
    }

    /// Timeout used for collection (diagnostic accessor).
    pub fn timeout(&self) -> Duration {
        self.opts.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirectoryServer;
    use syd_net::{Network, RequestHandler};
    use syd_wire::Request;

    /// Spin up a directory plus `n` plain echo servers registered as users
    /// 1..=n, each answering `svc.echo(args) -> [user, args...]`.
    fn setup(n: u64) -> (Network, DirectoryServer, SydEngine, Vec<Node>) {
        let net = Network::ideal();
        let dir = DirectoryServer::start(&net);
        let mut servers = Vec::new();
        let client_node = Node::spawn(&net);
        let dirc = DirectoryClient::new(client_node.clone(), dir.addr());
        for id in 1..=n {
            let server = Node::spawn(&net);
            let user = UserId::new(id);
            server.set_handler(Arc::new(move |_from, req: Request| {
                if req.method == "boom" {
                    return Err(SydError::App("boom".into()));
                }
                let mut out = vec![Value::from(id)];
                out.extend(req.args.clone());
                Ok(Value::list(out))
            }) as Arc<dyn RequestHandler>);
            dirc.register(user, &format!("user{id}"), server.addr()).unwrap();
            servers.push(server);
        }
        let engine = SydEngine::new(client_node, dirc);
        (net, dir, engine, servers)
    }

    #[test]
    fn single_invoke_resolves_by_user() {
        let (_net, _dir, engine, _servers) = setup(2);
        let out = engine
            .invoke(
                UserId::new(2),
                &ServiceName::new("svc"),
                "echo",
                vec![Value::str("hi")],
            )
            .unwrap();
        assert_eq!(out, Value::list([Value::I64(2), Value::str("hi")]));
    }

    #[test]
    fn group_invoke_collects_everyone_in_order() {
        let (_net, _dir, engine, _servers) = setup(5);
        let users: Vec<UserId> = (1..=5).map(UserId::new).collect();
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert!(result.all_ok());
        assert_eq!(result.ok_count(), 5);
        let ids: Vec<u64> = result.outcomes.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(
            result.aggregate(),
            Value::list((1..=5).map(|i| Value::list([Value::I64(i)])))
        );
    }

    #[test]
    fn group_invoke_mixes_successes_and_failures() {
        let (_net, _dir, engine, _servers) = setup(3);
        let users: Vec<UserId> = (1..=3).map(UserId::new).collect();
        // Everyone fails method "boom".
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "boom", vec![]);
        assert_eq!(result.ok_count(), 0);
        assert_eq!(result.errs().count(), 3);
        assert!(!result.all_ok());
        assert_eq!(result.aggregate(), Value::list([]));
    }

    #[test]
    fn unknown_user_fails_cleanly_in_group() {
        let (_net, _dir, engine, _servers) = setup(1);
        let users = vec![UserId::new(1), UserId::new(404)];
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert_eq!(result.ok_count(), 1);
        let (bad_user, err) = result.errs().next().unwrap();
        assert_eq!(bad_user, UserId::new(404));
        assert!(matches!(err, SydError::NotRegistered(_)));
    }

    #[test]
    fn cache_invalidation_follows_address_changes() {
        let (net, _dir, engine, servers) = setup(1);
        let user = UserId::new(1);
        let svc = ServiceName::new("svc");
        // Prime the cache.
        engine.invoke(user, &svc, "echo", vec![]).unwrap();
        // Move the user to a new node (re-register), kill the old node.
        let new_server = Node::spawn(&net);
        new_server.set_handler(Arc::new(move |_from, _req: Request| {
            Ok(Value::str("new home"))
        }) as Arc<dyn RequestHandler>);
        engine
            .directory()
            .register(user, "user1", new_server.addr())
            .unwrap();
        servers[0].shutdown();
        // Old address unreachable -> engine re-resolves and succeeds.
        let out = engine.invoke(user, &svc, "echo", vec![]).unwrap();
        assert_eq!(out, Value::str("new home"));
    }

    #[test]
    fn app_errors_do_not_trigger_reresolution() {
        let (_net, _dir, engine, _servers) = setup(1);
        let err = engine
            .invoke(UserId::new(1), &ServiceName::new("svc"), "boom", vec![])
            .unwrap_err();
        assert_eq!(err, SydError::App("boom".into()));
    }
}
