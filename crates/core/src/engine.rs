//! SyDEngine: single and group remote invocation with result aggregation
//! (§3.1c).
//!
//! "SyDEngine allows users to execute single or group services remotely via
//! SyDListener and aggregate results." Targets are *users*, not addresses:
//! the engine resolves each user through the SyDDirectory on every call
//! (with a small positive cache invalidated on failure), which is what
//! makes SyD applications location transparent and lets proxies substitute
//! for disconnected devices mid-conversation.
//!
//! Group invocation sends all requests before collecting any response, so
//! a group of `n` costs one round-trip of latency, not `n`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use syd_net::{CallOptions, Node, PendingCall};
use syd_telemetry::{Counter, Histogram};
use syd_types::{NodeAddr, ServiceName, SydError, SydResult, UserId, Value};
use syd_wire::Args;

use crate::directory::DirectoryClient;
use crate::qos::QosMonitor;
use syd_telemetry::names;

/// Result of a group invocation: per-user outcomes in request order.
#[derive(Debug)]
pub struct GroupResult {
    /// `(user, outcome)` for every target, in the order given.
    pub outcomes: Vec<(UserId, SydResult<Value>)>,
}

impl GroupResult {
    /// Users that answered successfully, with their values.
    pub fn oks(&self) -> impl Iterator<Item = (UserId, &Value)> {
        self.outcomes
            .iter()
            .filter_map(|(u, r)| r.as_ref().ok().map(|v| (*u, v)))
    }

    /// Users that failed, with their errors.
    pub fn errs(&self) -> impl Iterator<Item = (UserId, &SydError)> {
        self.outcomes
            .iter()
            .filter_map(|(u, r)| r.as_ref().err().map(|e| (*u, e)))
    }

    /// Number of successful outcomes.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// True iff every target succeeded.
    pub fn all_ok(&self) -> bool {
        self.ok_count() == self.outcomes.len()
    }

    /// Aggregates successful values into a list (the engine's "result
    /// aggregation" service), preserving target order.
    pub fn aggregate(&self) -> Value {
        Value::list(self.oks().map(|(_, v)| v.clone()))
    }
}

/// Hot-path tuning knobs, shared by every clone of an engine (a device's
/// negotiator and applications all see the same settings). Both default
/// to the optimised path; the legacy settings exist so the `perf`
/// benchmark driver can A/B the pre-optimisation behaviour on the same
/// harness.
struct EngineTuning {
    /// Resolve cold group members with one batched `lookup_many` round
    /// trip (`true`) or with `n` overlapped single lookups (`false`).
    batched_resolve: AtomicBool,
    /// Pre-encode a group broadcast's argument body once and share it
    /// across recipients (`true`) or deep-copy + re-encode per recipient
    /// (`false`).
    shared_encode: AtomicBool,
}

/// The invocation engine bound to one device's node.
#[derive(Clone)]
pub struct SydEngine {
    node: Node,
    directory: DirectoryClient,
    /// Positive lookup cache: user -> address. Invalidated per-user when a
    /// call through it fails, so proxy switchovers are picked up.
    cache: Arc<Mutex<HashMap<UserId, NodeAddr>>>,
    /// Call options behind a shared cell: [`SydEngine::set_options`]
    /// retunes every clone of this engine at once (the negotiator and
    /// applications hold clones), while [`SydEngine::with_options`]
    /// detaches the new handle onto its own cell, builder style.
    opts: Arc<Mutex<CallOptions>>,
    tuning: Arc<EngineTuning>,
    qos: Option<Arc<QosMonitor>>,
    /// End-to-end invoke latency ("engine.invoke"), resolve included.
    invoke_hist: Histogram,
    /// `engine.batch_resolves` — batched directory round trips issued.
    batch_resolves: Counter,
    /// `engine.resolve_fallbacks` — batched resolutions that fell back
    /// to the per-user overlapped path.
    resolve_fallbacks: Counter,
}

impl SydEngine {
    /// Builds an engine over `node`, resolving names with `directory`.
    pub fn new(node: Node, directory: DirectoryClient) -> SydEngine {
        let invoke_hist = node.metrics().histogram(names::ENGINE_INVOKE);
        let batch_resolves = node.metrics().counter(names::ENGINE_BATCH_RESOLVES);
        let resolve_fallbacks = node.metrics().counter(names::ENGINE_RESOLVE_FALLBACKS);
        SydEngine {
            node,
            directory,
            cache: Arc::new(Mutex::new(HashMap::new())),
            opts: Arc::new(Mutex::new(CallOptions::default())),
            tuning: Arc::new(EngineTuning {
                batched_resolve: AtomicBool::new(true),
                shared_encode: AtomicBool::new(true),
            }),
            qos: None,
            invoke_hist,
            batch_resolves,
            resolve_fallbacks,
        }
    }

    /// Attaches a QoS monitor: every `invoke` is observed, and
    /// [`SydEngine::invoke_with_deadline`] gains admission control.
    pub fn with_qos(mut self, qos: Arc<QosMonitor>) -> SydEngine {
        self.qos = Some(qos);
        self
    }

    /// The attached QoS monitor, if any.
    pub fn qos(&self) -> Option<&Arc<QosMonitor>> {
        self.qos.as_ref()
    }

    /// Replaces the default call options (builder style). The new handle
    /// gets its own options cell — clones made *before* this call keep
    /// their previous settings.
    pub fn with_options(mut self, opts: CallOptions) -> SydEngine {
        self.opts = Arc::new(Mutex::new(opts));
        self
    }

    /// Retunes the call options in place, visible to every clone of this
    /// engine (a device's negotiator and applications included).
    pub fn set_options(&self, opts: CallOptions) {
        *self.opts.lock() = opts;
    }

    /// Current call options.
    fn opts(&self) -> CallOptions {
        *self.opts.lock()
    }

    /// Switches between batched (`true`, default) and per-user overlapped
    /// (`false`) cold-group directory resolution. Shared across clones.
    pub fn set_batched_resolve(&self, on: bool) {
        self.tuning.batched_resolve.store(on, Ordering::Relaxed);
    }

    /// Whether cold group resolution uses the batched `lookup_many` path.
    pub fn batched_resolve(&self) -> bool {
        self.tuning.batched_resolve.load(Ordering::Relaxed)
    }

    /// Switches between encode-once broadcast bodies (`true`, default)
    /// and per-recipient deep copies (`false`). Shared across clones.
    pub fn set_shared_encode(&self, on: bool) {
        self.tuning.shared_encode.store(on, Ordering::Relaxed);
    }

    /// Whether group broadcasts share one pre-encoded argument body.
    pub fn shared_encode(&self) -> bool {
        self.tuning.shared_encode.load(Ordering::Relaxed)
    }

    /// Drops every cached address, forcing the next resolution of each
    /// user back through the directory (cold-start benchmarking, or
    /// after bulk re-registration).
    pub fn flush_cache(&self) {
        self.cache.lock().clear();
    }

    /// The directory client this engine resolves through.
    pub fn directory(&self) -> &DirectoryClient {
        &self.directory
    }

    /// The underlying network node.
    pub fn node(&self) -> &Node {
        &self.node
    }

    fn resolve(&self, user: UserId) -> SydResult<NodeAddr> {
        if let Some(&addr) = self.cache.lock().get(&user) {
            return Ok(addr);
        }
        let (addr, is_proxy) = self.directory.lookup(user)?;
        // Proxy addresses are never cached: while a user is proxied, every
        // call re-resolves, so the moment the primary reconnects peers
        // switch back to it ("once A comes back up, A takes over the
        // proxy", §5.2).
        if !is_proxy {
            self.cache.lock().insert(user, addr);
        }
        Ok(addr)
    }

    fn invalidate(&self, user: UserId) {
        self.cache.lock().remove(&user);
    }

    /// Resolves many users at once. Cache hits are served locally; the
    /// misses go to the directory in **one** batched `lookup_many` round
    /// trip (default), so a cold group call costs a single directory
    /// exchange regardless of group size. If the batch itself fails —
    /// lossy network, or a directory predating the batched method — the
    /// engine falls back to the legacy overlapped per-user path, which
    /// degrades gracefully one member at a time.
    pub fn resolve_many(&self, users: &[UserId]) -> Vec<(UserId, SydResult<NodeAddr>)> {
        // Directory resolution is one of the phases the critical-path
        // analyzer attributes; the lookup RPCs below nest under this span.
        let mut span = self.node.tracer().span(names::SPAN_DIR_RESOLVE);
        span.attr("users", users.len() as u64);
        if self.batched_resolve() {
            self.resolve_many_batched(users)
        } else {
            self.resolve_many_overlapped(users)
        }
    }

    /// Batched resolution: one `lookup_many` round trip for all misses.
    fn resolve_many_batched(&self, users: &[UserId]) -> Vec<(UserId, SydResult<NodeAddr>)> {
        let mut out: Vec<(UserId, Option<SydResult<NodeAddr>>)> = Vec::with_capacity(users.len());
        let mut misses: Vec<(usize, UserId)> = Vec::new();
        {
            let cache = self.cache.lock();
            for (i, &user) in users.iter().enumerate() {
                if let Some(&addr) = cache.get(&user) {
                    out.push((user, Some(Ok(addr))));
                } else {
                    out.push((user, None));
                    misses.push((i, user));
                }
            }
        }
        if !misses.is_empty() {
            let opts = self.opts();
            let miss_users: Vec<UserId> = misses.iter().map(|&(_, u)| u).collect();
            self.batch_resolves.inc();
            // The batch is idempotent, so retry it through loss; keep the
            // engine's own deadline so a drop fails over quickly.
            let batch = self.directory.lookup_many_with(
                &miss_users,
                CallOptions::new()
                    .with_timeout(opts.timeout)
                    .with_retries(opts.retries.max(4)),
            );
            match batch {
                Ok(entries) => {
                    for (&(i, user), entry) in misses.iter().zip(entries) {
                        let result = match entry {
                            Some((addr, is_proxy)) => {
                                // Proxy addresses are never cached (§5.2),
                                // same as the single-user path.
                                if !is_proxy {
                                    self.cache.lock().insert(user, addr);
                                }
                                Ok(addr)
                            }
                            None => Err(SydError::NotRegistered(user.to_string())),
                        };
                        out[i].1 = Some(result);
                    }
                }
                Err(_) => {
                    // Whole batch lost: fall back to the overlapped
                    // per-user path, which retries members independently.
                    self.resolve_fallbacks.inc();
                    return self.resolve_many_overlapped(users);
                }
            }
        }
        out.into_iter()
            .map(|(user, r)| {
                // Every slot is filled by the loop above; a miss is a
                // logic bug surfaced as an error, not a panic.
                let r = r.unwrap_or_else(|| Err(SydError::App("lookup slot left unfilled".into())));
                (user, r)
            })
            .collect()
    }

    /// Legacy resolution: overlapped single lookups for cache misses so a
    /// cold group call costs one lookup round trip of *latency* — but
    /// still `n` request/response exchanges on the wire.
    fn resolve_many_overlapped(&self, users: &[UserId]) -> Vec<(UserId, SydResult<NodeAddr>)> {
        let opts = self.opts();
        let mut out: Vec<(UserId, Option<SydResult<NodeAddr>>)> = Vec::with_capacity(users.len());
        let mut pending: Vec<(usize, PendingCall)> = Vec::new();
        {
            let cache = self.cache.lock();
            for &user in users {
                if let Some(&addr) = cache.get(&user) {
                    out.push((user, Some(Ok(addr))));
                } else {
                    out.push((user, None));
                }
            }
            drop(cache);
            for (i, &user) in users.iter().enumerate() {
                if out[i].1.is_some() {
                    continue;
                }
                let sent = self.node.call_async(
                    self.directory.dir_addr(),
                    &crate::directory::dir_service(),
                    "lookup",
                    vec![Value::from(user.raw())],
                );
                match sent {
                    Ok(call) => pending.push((i, call)),
                    Err(e) => out[i].1 = Some(Err(e)),
                }
            }
        }
        for (i, call) in pending {
            let result = call.wait(opts.timeout).and_then(|v| {
                let addr = NodeAddr::new(v.get("addr")?.as_i64()? as u64);
                let is_proxy = v.get("is_proxy")?.as_bool()?;
                Ok((addr, is_proxy))
            });
            let result = match result {
                Ok((addr, is_proxy)) => {
                    if !is_proxy {
                        self.cache.lock().insert(users[i], addr);
                    }
                    Ok(addr)
                }
                // The overlapped fast path lost its message (lossy
                // network): fall back to a retrying lookup bounded by the
                // engine's own deadline, so a single drop cannot fail the
                // whole group member.
                Err(err) if err.is_transient() => self
                    .directory
                    .lookup_with(
                        users[i],
                        CallOptions::new()
                            .with_timeout(opts.timeout)
                            .with_retries(opts.retries.max(4)),
                    )
                    .map(|(addr, is_proxy)| {
                        if !is_proxy {
                            self.cache.lock().insert(users[i], addr);
                        }
                        addr
                    }),
                Err(e) => Err(e),
            };
            out[i].1 = Some(result);
        }
        out.into_iter()
            .map(|(user, r)| {
                // Every slot is filled by the loop above; a miss is a
                // logic bug surfaced as an error, not a panic.
                let r = r.unwrap_or_else(|| Err(SydError::App("lookup slot left unfilled".into())));
                (user, r)
            })
            .collect()
    }

    /// One blocking call to a resolved address, with the logical target
    /// user stamped on the request (proxy routing) and this engine's
    /// deadline/retry options applied. Takes [`Args`] so retry attempts
    /// (and group broadcasts) clone a shared handle, not the values.
    fn call_at(
        &self,
        addr: NodeAddr,
        target: UserId,
        service: &ServiceName,
        method: &str,
        args: Args,
    ) -> SydResult<Value> {
        let opts = self.opts();
        let mut attempts = 0;
        loop {
            let pending = self
                .node
                .call_async_to(addr, target, service, method, args.clone())?;
            match pending.wait(opts.timeout) {
                Ok(v) => return Ok(v),
                Err(err) if err.is_transient() && attempts < opts.retries => attempts += 1,
                Err(err) => return Err(err),
            }
        }
    }

    /// Invokes `service.method(args)` on `user`'s device (or its proxy).
    ///
    /// On a transient failure the engine re-resolves the user once — this
    /// is the moment a proxy silently replaces a disconnected device.
    pub fn invoke(
        &self,
        user: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<Value> {
        let started = std::time::Instant::now();
        let result = self.invoke_inner(user, service, method, args);
        self.invoke_hist.record_duration(started.elapsed());
        if let Some(qos) = &self.qos {
            qos.observe(user, service, started.elapsed(), result.is_ok());
        }
        result
    }

    /// QoS-aware invocation (§3.2, companion paper \[4\]): refuse targets
    /// whose observed latency cannot plausibly meet `deadline`, and bound
    /// the call by it. Requires [`SydEngine::with_qos`].
    pub fn invoke_with_deadline(
        &self,
        user: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
        deadline: Duration,
    ) -> SydResult<Value> {
        if let Some(qos) = &self.qos {
            qos.admit(user, service, deadline)?;
        }
        let bounded = self.clone().with_options(
            CallOptions::new()
                .with_timeout(deadline)
                .with_retries(self.opts().retries),
        );
        let started = std::time::Instant::now();
        let result = bounded.invoke_inner(user, service, method, args);
        self.invoke_hist.record_duration(started.elapsed());
        if let Some(qos) = &self.qos {
            qos.observe(user, service, started.elapsed(), result.is_ok());
        }
        result
    }

    fn invoke_inner(
        &self,
        user: UserId,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<Value> {
        let args = Args::from(args);
        let addr = self.resolve(user)?;
        match self.call_at(addr, user, service, method, args.clone()) {
            Ok(v) => Ok(v),
            Err(err) if err.is_transient() || matches!(err, SydError::Unreachable(_)) => {
                // Re-resolve: the directory may now point at a proxy (or at
                // the primary again after recovery).
                self.invalidate(user);
                let fresh = self.resolve(user)?;
                if fresh == addr {
                    return Err(err);
                }
                self.call_at(fresh, user, service, method, args)
            }
            Err(err) => Err(err),
        }
    }

    /// Invokes the same method on every user concurrently and collects
    /// per-user outcomes.
    ///
    /// The broadcast body is identical for every member, so by default it
    /// is encoded **once** and the pre-encoded bytes are shared by every
    /// outgoing request (and any retry) — a group of `n` pays one
    /// serialisation, not `n`.
    pub fn invoke_group(
        &self,
        users: &[UserId],
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> GroupResult {
        let shared = self.shared_encode();
        let args = Args::from(args);
        if shared {
            args.preencode();
        }
        // Fan out: resolve (one batched round trip) + send every request
        // before collecting any response.
        let resolved = self.resolve_many(users);
        let mut pending = Vec::with_capacity(users.len());
        for (user, addr) in resolved {
            // Legacy mode deep-copies the values per recipient, paying the
            // per-member re-encode the shared handle exists to avoid.
            let body = if shared {
                args.clone()
            } else {
                Args::from(args.to_vec())
            };
            let sent = addr.and_then(|addr| {
                self.node
                    .call_async_to(addr, user, service, method, body.clone())
            });
            pending.push((user, body, sent));
        }
        self.collect_with_retry(pending, service, method)
    }

    /// Invokes a method on every member of a *named directory group* —
    /// "user/object groups can also be formed on SyDDirectory" (§3.1a) and
    /// the engine "execute\[s\] a service on a group of objects".
    pub fn invoke_group_by_name(
        &self,
        group: &str,
        service: &ServiceName,
        method: &str,
        args: Vec<Value>,
    ) -> SydResult<GroupResult> {
        let group_id = self.directory.group_by_name(group)?;
        let members = self.directory.group_members(group_id)?;
        Ok(self.invoke_group(&members, service, method, args))
    }

    /// Like [`SydEngine::invoke_group`] but with per-user arguments — the
    /// negotiation protocol marks each participant's *own* entity, so every
    /// request differs (and nothing can be encode-shared).
    pub fn invoke_group_varied(
        &self,
        calls: &[(UserId, Vec<Value>)],
        service: &ServiceName,
        method: &str,
    ) -> GroupResult {
        let users: Vec<UserId> = calls.iter().map(|(u, _)| *u).collect();
        let resolved = self.resolve_many(&users);
        let mut pending = Vec::with_capacity(calls.len());
        for ((user, args), (_, addr)) in calls.iter().zip(resolved) {
            let body = Args::from(args.as_slice());
            let sent = addr.and_then(|addr| {
                self.node
                    .call_async_to(addr, *user, service, method, body.clone())
            });
            pending.push((*user, body, sent));
        }
        self.collect_with_retry(pending, service, method)
    }

    /// Collects a fanned-out group round, giving every failed member the
    /// same single re-resolve retry as [`SydEngine::invoke`]: transient
    /// wait failures *and* transient/unreachable send failures invalidate
    /// the cached address, re-resolve (the directory may now point at a
    /// proxy) and try once more at the fresh address.
    fn collect_with_retry(
        &self,
        pending: Vec<(UserId, Args, SydResult<PendingCall>)>,
        service: &ServiceName,
        method: &str,
    ) -> GroupResult {
        let timeout = self.opts().timeout;
        let outcomes = pending
            .into_iter()
            .map(|(user, args, sent)| {
                let first = match sent {
                    Ok(call) => call.wait(timeout),
                    Err(err) => Err(err),
                };
                let outcome = match first {
                    Ok(v) => Ok(v),
                    Err(err) if err.is_transient() || matches!(err, SydError::Unreachable(_)) => {
                        self.invalidate(user);
                        match self.resolve(user) {
                            Ok(addr) => self.call_at(addr, user, service, method, args),
                            Err(e) => Err(e),
                        }
                    }
                    Err(err) => Err(err),
                };
                (user, outcome)
            })
            .collect();
        GroupResult { outcomes }
    }

    /// Timeout used for collection (diagnostic accessor).
    pub fn timeout(&self) -> Duration {
        self.opts().timeout
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use crate::directory::DirectoryServer;
    use syd_net::{Network, RequestHandler};
    use syd_wire::Request;

    /// Spin up a directory plus `n` plain echo servers registered as users
    /// 1..=n, each answering `svc.echo(args) -> [user, args...]`.
    fn setup(n: u64) -> (Network, DirectoryServer, SydEngine, Vec<Node>) {
        let net = Network::ideal();
        let dir = DirectoryServer::start(&net);
        let mut servers = Vec::new();
        let client_node = Node::spawn(&net);
        let dirc = DirectoryClient::new(client_node.clone(), dir.addr());
        for id in 1..=n {
            let server = Node::spawn(&net);
            let user = UserId::new(id);
            server.set_handler(Arc::new(move |_from, req: Request| {
                if req.method == "boom" {
                    return Err(SydError::App("boom".into()));
                }
                let mut out = vec![Value::from(id)];
                out.extend(req.args.iter().cloned());
                Ok(Value::list(out))
            }) as Arc<dyn RequestHandler>);
            dirc.register(user, &format!("user{id}"), server.addr())
                .unwrap();
            servers.push(server);
        }
        let engine = SydEngine::new(client_node, dirc);
        (net, dir, engine, servers)
    }

    #[test]
    fn single_invoke_resolves_by_user() {
        let (_net, _dir, engine, _servers) = setup(2);
        let out = engine
            .invoke(
                UserId::new(2),
                &ServiceName::new("svc"),
                "echo",
                vec![Value::str("hi")],
            )
            .unwrap();
        assert_eq!(out, Value::list([Value::I64(2), Value::str("hi")]));
    }

    #[test]
    fn group_invoke_collects_everyone_in_order() {
        let (_net, _dir, engine, _servers) = setup(5);
        let users: Vec<UserId> = (1..=5).map(UserId::new).collect();
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert!(result.all_ok());
        assert_eq!(result.ok_count(), 5);
        let ids: Vec<u64> = result.outcomes.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(
            result.aggregate(),
            Value::list((1..=5).map(|i| Value::list([Value::I64(i)])))
        );
    }

    #[test]
    fn group_invoke_mixes_successes_and_failures() {
        let (_net, _dir, engine, _servers) = setup(3);
        let users: Vec<UserId> = (1..=3).map(UserId::new).collect();
        // Everyone fails method "boom".
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "boom", vec![]);
        assert_eq!(result.ok_count(), 0);
        assert_eq!(result.errs().count(), 3);
        assert!(!result.all_ok());
        assert_eq!(result.aggregate(), Value::list([]));
    }

    #[test]
    fn unknown_user_fails_cleanly_in_group() {
        let (_net, _dir, engine, _servers) = setup(1);
        let users = vec![UserId::new(1), UserId::new(404)];
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert_eq!(result.ok_count(), 1);
        let (bad_user, err) = result.errs().next().unwrap();
        assert_eq!(bad_user, UserId::new(404));
        assert!(matches!(err, SydError::NotRegistered(_)));
    }

    #[test]
    fn cache_invalidation_follows_address_changes() {
        let (net, _dir, engine, servers) = setup(1);
        let user = UserId::new(1);
        let svc = ServiceName::new("svc");
        // Prime the cache.
        engine.invoke(user, &svc, "echo", vec![]).unwrap();
        // Move the user to a new node (re-register), kill the old node.
        let new_server = Node::spawn(&net);
        new_server.set_handler(
            Arc::new(move |_from, _req: Request| Ok(Value::str("new home")))
                as Arc<dyn RequestHandler>,
        );
        engine
            .directory()
            .register(user, "user1", new_server.addr())
            .unwrap();
        servers[0].shutdown();
        // Old address unreachable -> engine re-resolves and succeeds.
        let out = engine.invoke(user, &svc, "echo", vec![]).unwrap();
        assert_eq!(out, Value::str("new home"));
    }

    #[test]
    fn app_errors_do_not_trigger_reresolution() {
        let (_net, _dir, engine, _servers) = setup(1);
        let err = engine
            .invoke(UserId::new(1), &ServiceName::new("svc"), "boom", vec![])
            .unwrap_err();
        assert_eq!(err, SydError::App("boom".into()));
    }

    /// Reads a directory-server counter, defaulting to 0 if untouched.
    fn dir_counter(dir: &DirectoryServer, name: &str) -> u64 {
        dir.metrics().get_counter(name).map_or(0, |c| c.get())
    }

    #[test]
    fn cold_group_invoke_uses_one_directory_round_trip() {
        let (_net, dir, engine, _servers) = setup(8);
        let users: Vec<UserId> = (1..=8).map(UserId::new).collect();
        let before = dir_counter(&dir, "dir.batch_lookups");
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert!(result.all_ok());
        // One batched exchange served the whole cold group; no single
        // lookups at all (registration goes through "register", and the
        // setup helper never resolves).
        assert_eq!(dir_counter(&dir, "dir.batch_lookups") - before, 1);
        assert_eq!(dir_counter(&dir, "dir.batch_lookup_users"), 8);
        assert_eq!(dir_counter(&dir, "dir.lookups"), 0);
        // Warm repeat: served fully from cache, zero directory traffic.
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert!(result.all_ok());
        assert_eq!(dir_counter(&dir, "dir.batch_lookups") - before, 1);
        assert_eq!(dir_counter(&dir, "dir.lookups"), 0);
    }

    #[test]
    fn legacy_mode_resolves_per_user() {
        let (_net, dir, engine, _servers) = setup(4);
        engine.set_batched_resolve(false);
        engine.set_shared_encode(false);
        let users: Vec<UserId> = (1..=4).map(UserId::new).collect();
        let result = engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert!(result.all_ok());
        assert_eq!(dir_counter(&dir, "dir.batch_lookups"), 0);
        assert_eq!(dir_counter(&dir, "dir.lookups"), 4);
    }

    #[test]
    fn flush_cache_forces_reresolution() {
        let (_net, dir, engine, _servers) = setup(2);
        let users: Vec<UserId> = (1..=2).map(UserId::new).collect();
        engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        engine.flush_cache();
        engine.invoke_group(&users, &ServiceName::new("svc"), "echo", vec![]);
        assert_eq!(dir_counter(&dir, "dir.batch_lookups"), 2);
    }

    /// Under message loss, a dropped lookup must not fail its sibling
    /// group members — and whatever the loss, every successful resolution
    /// must land in the cache so the next round is free. Exercised for
    /// both the batched and the overlapped resolver.
    fn resolve_many_survives_loss(batched: bool) {
        let (net, _dir, engine, _servers) = setup(6);
        engine.set_batched_resolve(batched);
        engine.set_options(
            CallOptions::new()
                .with_timeout(Duration::from_millis(40))
                .with_retries(10),
        );
        let users: Vec<UserId> = (1..=6).map(UserId::new).collect();
        // The batched exchange is only a couple of messages, so a single
        // seed may sail through loss-free; walk seeds (deterministically)
        // until the loss model has actually dropped something.
        for seed in 0..20 {
            net.reconfigure(syd_net::NetConfig::ideal().with_loss(0.4).with_seed(seed));
            engine.flush_cache();
            let resolved = engine.resolve_many(&users);
            for (user, r) in &resolved {
                assert!(r.is_ok(), "user {user} failed (seed {seed}): {r:?}");
            }
            if net.stats().dropped_loss > 0 {
                break;
            }
        }
        assert!(net.stats().dropped_loss > 0, "loss model never fired");
        // Cut the network entirely: resolution must now come from cache.
        net.reconfigure(syd_net::NetConfig::ideal().with_loss(1.0).with_seed(8));
        let resolved = engine.resolve_many(&users);
        for (user, r) in &resolved {
            assert!(r.is_ok(), "user {user} not cached: {r:?}");
        }
    }

    #[test]
    fn batched_resolve_survives_loss_and_populates_cache() {
        resolve_many_survives_loss(true);
    }

    #[test]
    fn overlapped_resolve_survives_loss_and_populates_cache() {
        resolve_many_survives_loss(false);
    }

    #[test]
    fn varied_group_retries_after_stale_cache_entry() {
        let (net, _dir, engine, servers) = setup(2);
        let svc = ServiceName::new("svc");
        let users: Vec<UserId> = (1..=2).map(UserId::new).collect();
        // Prime the cache for both users.
        assert!(engine.invoke_group(&users, &svc, "echo", vec![]).all_ok());
        // User 1 moves to a new node; the old one dies. The cached address
        // is now stale, so the send fails Unreachable — the varied group
        // call must re-resolve and retry, like `invoke` does.
        let user = UserId::new(1);
        let new_server = Node::spawn(&net);
        new_server.set_handler(
            Arc::new(move |_from, _req: Request| Ok(Value::str("moved")))
                as Arc<dyn RequestHandler>,
        );
        engine
            .directory()
            .register(user, "user1", new_server.addr())
            .unwrap();
        servers[0].shutdown();
        let calls: Vec<(UserId, Vec<Value>)> = users
            .iter()
            .map(|&u| (u, vec![Value::from(u.raw())]))
            .collect();
        let result = engine.invoke_group_varied(&calls, &svc, "echo");
        assert!(result.all_ok(), "outcomes: {:?}", result.outcomes);
        assert_eq!(result.outcomes[0].1.as_ref().unwrap(), &Value::str("moved"));
    }

    #[test]
    fn shared_encode_serialises_the_broadcast_body_once() {
        use syd_wire::Encode;
        let (net, _dir, engine, _servers) = setup(8);
        let users: Vec<UserId> = (1..=8).map(UserId::new).collect();
        // Warm the cache so both rounds below differ only in body bytes.
        assert!(engine
            .invoke_group(&users, &ServiceName::new("svc"), "echo", vec![])
            .all_ok());
        let payload = vec![Value::str("x".repeat(512))];
        let body_len = {
            let args = Args::from(payload.clone());
            args.encoded_len() as u64
        };
        let before = net.stats().bytes_sent;
        assert!(engine
            .invoke_group(&users, &ServiceName::new("svc"), "echo", payload)
            .all_ok());
        let wire_bytes = net.stats().bytes_sent - before;
        // Every recipient still receives the full body on the wire; the
        // saving is CPU (one encode) and heap (one buffer), not bytes.
        assert!(
            wire_bytes >= 8 * body_len,
            "expected >= {} broadcast bytes, saw {wire_bytes}",
            8 * body_len
        );
    }
}
