//! SyDBid — the "price-is-right" bidding game of Figure 2.
//!
//! The paper lists "a price-is-right bidding game suitable to be played at
//! an airport or a mall" among its sample SyDApps (§3.1). A host device
//! runs rounds; player devices answer bid requests:
//!
//! * the host announces an item and collects bids with one engine **group
//!   invocation** (every player's `bid` method, §3.1c),
//! * the classic rule picks the winner: closest bid **not exceeding** the
//!   actual price,
//! * results are pushed to players as global events through the event
//!   handler, and a score table accumulates on the host's store.
//!
//! Players install a [`BidStrategy`] — in a real deployment a UI prompt, in
//! tests and benches a closure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use syd_core::DeviceRuntime;
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{ServiceName, SydError, SydResult, UserId, Value};

/// The bidding service name.
pub fn bidding_service() -> ServiceName {
    ServiceName::new("bidding")
}

const T_SCORES: &str = "scores";
const T_ROUNDS: &str = "rounds";

/// Decides a player's bid for an item (cents). `None` = sit out.
pub type BidStrategy = Arc<dyn Fn(&str) -> Option<u64> + Send + Sync>;

/// A player device.
pub struct Player {
    device: DeviceRuntime,
}

impl Player {
    /// Installs the player application with the given strategy.
    pub fn install(device: &DeviceRuntime, strategy: BidStrategy) -> SydResult<Arc<Player>> {
        let player = Arc::new(Player {
            device: device.clone(),
        });
        device.register_service(
            &bidding_service(),
            "bid",
            Arc::new(move |_ctx, args: &[Value]| {
                let item = args
                    .first()
                    .ok_or_else(|| SydError::Protocol("bid needs item".into()))?
                    .as_str()?;
                Ok(match strategy(item) {
                    Some(cents) => Value::from(cents),
                    None => Value::Null,
                })
            }),
        )?;
        Ok(player)
    }

    /// The player's user id.
    pub fn user(&self) -> UserId {
        self.device.user()
    }
}

/// Result of one round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundResult {
    /// Round number.
    pub round: u64,
    /// The item that was up.
    pub item: String,
    /// The hidden actual price (cents).
    pub actual_price: u64,
    /// All bids received, in player order.
    pub bids: Vec<(UserId, Option<u64>)>,
    /// The winner (closest without going over), if anyone qualified.
    pub winner: Option<UserId>,
}

/// The game host.
pub struct Host {
    device: DeviceRuntime,
    store: Store,
    next_round: AtomicU64,
}

impl Host {
    /// Installs the host application.
    pub fn install(device: &DeviceRuntime) -> SydResult<Arc<Host>> {
        let store = device.store().clone();
        store.create_table(Schema::new(
            T_SCORES,
            vec![
                Column::required("player", ColumnType::I64),
                Column::required("wins", ColumnType::I64),
            ],
            &["player"],
        )?)?;
        store.create_table(Schema::new(
            T_ROUNDS,
            vec![
                Column::required("round", ColumnType::I64),
                Column::required("item", ColumnType::Str),
                Column::required("price", ColumnType::I64),
                Column::nullable("winner", ColumnType::I64),
            ],
            &["round"],
        )?)?;
        Ok(Arc::new(Host {
            device: device.clone(),
            store,
            next_round: AtomicU64::new(1),
        }))
    }

    /// The host's user id.
    pub fn user(&self) -> UserId {
        self.device.user()
    }

    /// Runs one round: collect bids from every player in one group
    /// invocation, pick the winner, record scores, notify players.
    pub fn run_round(
        &self,
        players: &[UserId],
        item: &str,
        actual_price: u64,
    ) -> SydResult<RoundResult> {
        let round = self.next_round.fetch_add(1, Ordering::Relaxed);
        let result = self.device.engine().invoke_group(
            players,
            &bidding_service(),
            "bid",
            vec![Value::str(item)],
        );
        let bids: Vec<(UserId, Option<u64>)> = result
            .outcomes
            .iter()
            .map(|(user, outcome)| {
                let bid = match outcome {
                    Ok(Value::I64(cents)) if *cents >= 0 => Some(*cents as u64),
                    _ => None, // sat out, unreachable, or nonsense
                };
                (*user, bid)
            })
            .collect();

        // Closest without going over.
        let winner = bids
            .iter()
            .filter_map(|(user, bid)| {
                let b = (*bid)?;
                (b <= actual_price).then_some((*user, b))
            })
            .max_by_key(|&(_, b)| b)
            .map(|(user, _)| user);

        self.store.insert(
            T_ROUNDS,
            vec![
                Value::from(round),
                Value::str(item),
                Value::from(actual_price),
                winner.map_or(Value::Null, |u| Value::from(u.raw())),
            ],
        )?;
        if let Some(user) = winner {
            self.bump_score(user)?;
        }

        // Push the outcome to every player as a global event.
        let payload = Value::map([
            ("round", Value::from(round)),
            ("item", Value::str(item)),
            ("price", Value::from(actual_price)),
            (
                "winner",
                winner.map_or(Value::Null, |u| Value::from(u.raw())),
            ),
        ]);
        for &player in players {
            if let Ok((addr, _)) = self.device.engine().directory().lookup(player) {
                let _ = self
                    .device
                    .node()
                    .publish_event(addr, "bidding.result", payload.clone());
            }
        }

        Ok(RoundResult {
            round,
            item: item.to_owned(),
            actual_price,
            bids,
            winner,
        })
    }

    fn bump_score(&self, player: UserId) -> SydResult<()> {
        match self
            .store
            .get_by_key(T_SCORES, &[Value::from(player.raw())])?
        {
            Some(row) => {
                let wins = row.values[1].as_i64()? + 1;
                self.store.update(
                    T_SCORES,
                    &Predicate::Eq("player".into(), Value::from(player.raw())),
                    &[("wins".into(), Value::I64(wins))],
                )?;
            }
            None => {
                self.store
                    .insert(T_SCORES, vec![Value::from(player.raw()), Value::I64(1)])?;
            }
        }
        Ok(())
    }

    /// The score table, highest first.
    pub fn scores(&self) -> SydResult<Vec<(UserId, u64)>> {
        self.store
            .query(T_SCORES)
            .order_by("wins", false)
            .run()?
            .into_iter()
            .map(|row| {
                Ok((
                    UserId::new(row.values[0].as_i64()? as u64),
                    row.values[1].as_i64()? as u64,
                ))
            })
            .collect()
    }

    /// Number of rounds played.
    pub fn rounds_played(&self) -> SydResult<usize> {
        self.store.count(T_ROUNDS, &Predicate::True)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use syd_core::SydEnv;
    use syd_net::NetConfig;

    fn fixed(cents: u64) -> BidStrategy {
        Arc::new(move |_item| Some(cents))
    }

    fn rig(strategies: Vec<BidStrategy>) -> (SydEnv, Arc<Host>, Vec<Arc<Player>>) {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let host_device = env.device("host", "").unwrap();
        let host = Host::install(&host_device).unwrap();
        let players = strategies
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let d = env.device(&format!("player{i}"), "").unwrap();
                Player::install(&d, s).unwrap()
            })
            .collect();
        (env, host, players)
    }

    #[test]
    fn closest_without_going_over_wins() {
        let (_env, host, players) = rig(vec![fixed(500), fixed(899), fixed(950)]);
        let users: Vec<UserId> = players.iter().map(|p| p.user()).collect();
        let result = host.run_round(&users, "toaster", 900).unwrap();
        // 950 went over; 899 beats 500.
        assert_eq!(result.winner, Some(players[1].user()));
        assert_eq!(result.bids.len(), 3);
        assert_eq!(host.scores().unwrap(), vec![(players[1].user(), 1)]);
    }

    #[test]
    fn everyone_over_means_no_winner() {
        let (_env, host, players) = rig(vec![fixed(1000), fixed(2000)]);
        let users: Vec<UserId> = players.iter().map(|p| p.user()).collect();
        let result = host.run_round(&users, "mug", 900).unwrap();
        assert_eq!(result.winner, None);
        assert!(host.scores().unwrap().is_empty());
        assert_eq!(host.rounds_played().unwrap(), 1);
    }

    #[test]
    fn sitting_out_and_unreachable_players_are_skipped() {
        let (env, host, players) = rig(vec![
            Arc::new(|_| None), // sits out
            fixed(100),
            fixed(200),
        ]);
        let users: Vec<UserId> = players.iter().map(|p| p.user()).collect();
        // Player 2 walks out of the mall.
        env.network().set_connected(players[2].device.addr(), false);
        let result = host.run_round(&users, "radio", 500).unwrap();
        assert_eq!(result.winner, Some(players[1].user()));
        assert_eq!(result.bids[0].1, None);
        assert_eq!(result.bids[2].1, None);
    }

    #[test]
    fn scores_accumulate_over_rounds() {
        let (_env, host, players) = rig(vec![fixed(800), fixed(700)]);
        let users: Vec<UserId> = players.iter().map(|p| p.user()).collect();
        host.run_round(&users, "a", 900).unwrap(); // p0 wins (800)
        host.run_round(&users, "b", 750).unwrap(); // p1 wins (700)
        host.run_round(&users, "c", 900).unwrap(); // p0 wins again
        let scores = host.scores().unwrap();
        assert_eq!(scores[0], (players[0].user(), 2));
        assert_eq!(scores[1], (players[1].user(), 1));
        assert_eq!(host.rounds_played().unwrap(), 3);
    }

    #[test]
    fn players_receive_result_events() {
        use std::sync::atomic::{AtomicU32, Ordering as AOrd};
        let (_env, host, players) = rig(vec![fixed(10), fixed(20)]);
        let users: Vec<UserId> = players.iter().map(|p| p.user()).collect();
        let seen = Arc::new(AtomicU32::new(0));
        for p in &players {
            let sc = Arc::clone(&seen);
            p.device.events().subscribe(
                "bidding.",
                Arc::new(move |_t, payload| {
                    assert!(payload.get("round").is_ok());
                    sc.fetch_add(1, AOrd::SeqCst);
                }),
            );
            // Wire node events into the device event handler.
            let events = p.device.events().clone();
            p.device
                .node()
                .set_event_sink(Arc::new(move |_from, ev: syd_wire::EventMsg| {
                    events.publish_local(&ev.topic, &ev.payload);
                }));
        }
        host.run_round(&users, "lamp", 100).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while seen.load(AOrd::SeqCst) < 2 {
            assert!(std::time::Instant::now() < deadline, "events missing");
            std::thread::yield_now();
        }
    }
}
