//! The Tiny Encryption Algorithm (Wheeler & Needham, FSE 1994) — the
//! paper's reference \[22\].
//!
//! TEA encrypts a 64-bit block (two `u32` halves) under a 128-bit key
//! (four `u32` words) with 32 cycles of a Feistel-like mix using the
//! magic constant `DELTA = 0x9E3779B9` (derived from the golden ratio).

/// TEA block size in bytes.
pub const BLOCK_SIZE: usize = 8;

/// The golden-ratio-derived round constant.
const DELTA: u32 = 0x9E37_79B9;

/// Number of cycles (each cycle is two Feistel rounds).
const CYCLES: u32 = 32;

/// A 128-bit TEA key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TeaKey(pub [u32; 4]);

impl TeaKey {
    /// Builds a key from four words.
    pub const fn new(k: [u32; 4]) -> Self {
        TeaKey(k)
    }

    /// Builds a key from 16 little-endian bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        let mut k = [0u32; 4];
        for (i, word) in k.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        TeaKey(k)
    }

    /// Encrypts one 64-bit block in place.
    pub fn encrypt_block(&self, block: &mut [u32; 2]) {
        let [k0, k1, k2, k3] = self.0;
        let [mut v0, mut v1] = *block;
        let mut sum: u32 = 0;
        for _ in 0..CYCLES {
            sum = sum.wrapping_add(DELTA);
            v0 = v0.wrapping_add(
                (v1 << 4).wrapping_add(k0) ^ v1.wrapping_add(sum) ^ (v1 >> 5).wrapping_add(k1),
            );
            v1 = v1.wrapping_add(
                (v0 << 4).wrapping_add(k2) ^ v0.wrapping_add(sum) ^ (v0 >> 5).wrapping_add(k3),
            );
        }
        *block = [v0, v1];
    }

    /// Decrypts one 64-bit block in place.
    pub fn decrypt_block(&self, block: &mut [u32; 2]) {
        let [k0, k1, k2, k3] = self.0;
        let [mut v0, mut v1] = *block;
        let mut sum: u32 = DELTA.wrapping_mul(CYCLES);
        for _ in 0..CYCLES {
            v1 = v1.wrapping_sub(
                (v0 << 4).wrapping_add(k2) ^ v0.wrapping_add(sum) ^ (v0 >> 5).wrapping_add(k3),
            );
            v0 = v0.wrapping_sub(
                (v1 << 4).wrapping_add(k0) ^ v1.wrapping_add(sum) ^ (v1 >> 5).wrapping_add(k1),
            );
            sum = sum.wrapping_sub(DELTA);
        }
        *block = [v0, v1];
    }

    /// Encrypts an 8-byte block (little-endian halves) in place.
    pub fn encrypt_bytes(&self, bytes: &mut [u8; BLOCK_SIZE]) {
        let mut block = bytes_to_block(bytes);
        self.encrypt_block(&mut block);
        *bytes = block_to_bytes(block);
    }

    /// Decrypts an 8-byte block (little-endian halves) in place.
    pub fn decrypt_bytes(&self, bytes: &mut [u8; BLOCK_SIZE]) {
        let mut block = bytes_to_block(bytes);
        self.decrypt_block(&mut block);
        *bytes = block_to_bytes(block);
    }
}

fn bytes_to_block(bytes: &[u8; BLOCK_SIZE]) -> [u32; 2] {
    let mut a = [0u8; 4];
    let mut b = [0u8; 4];
    a.copy_from_slice(&bytes[..4]);
    b.copy_from_slice(&bytes[4..]);
    [u32::from_le_bytes(a), u32::from_le_bytes(b)]
}

fn block_to_bytes(block: [u32; 2]) -> [u8; BLOCK_SIZE] {
    let mut out = [0u8; BLOCK_SIZE];
    out[..4].copy_from_slice(&block[0].to_le_bytes());
    out[4..].copy_from_slice(&block[1].to_le_bytes());
    out
}

/// Derives a 128-bit key from an arbitrary passphrase by Davies–Meyer-style
/// chaining of TEA over the passphrase blocks. Deterministic; collisions
/// are as cheap as TEA allows — adequate for the paper's threat model
/// (shared-secret device enrolment), not for password storage at large.
pub fn key_from_passphrase(passphrase: &str) -> TeaKey {
    let mut state = [0x6a09_e667u32, 0xbb67_ae85, 0x3c6e_f372, 0xa54f_f53a];
    let bytes = passphrase.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    let absorb = |chunk: [u8; 8], state: &mut [u32; 4]| {
        let key = TeaKey::new(*state);
        let mut block = bytes_to_block(&chunk);
        let input = block;
        key.encrypt_block(&mut block);
        // Davies–Meyer feed-forward, spread across all four state words.
        state[0] ^= block[0].wrapping_add(input[0]);
        state[1] ^= block[1].wrapping_add(input[1]);
        state[2] = state[2].wrapping_add(block[0].rotate_left(16));
        state[3] = state[3].wrapping_add(block[1].rotate_left(16));
    };
    for chunk in &mut chunks {
        let mut c = [0u8; 8];
        c.copy_from_slice(chunk);
        absorb(c, &mut state);
    }
    // Final padded block: remainder + length, so "a" and "a\0" differ.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = bytes.len() as u8;
    absorb(last, &mut state);
    TeaKey::new(state)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    /// Published TEA reference vector (all-zero key and plaintext).
    #[test]
    fn reference_vector_zero() {
        let key = TeaKey::new([0, 0, 0, 0]);
        let mut block = [0u32, 0u32];
        key.encrypt_block(&mut block);
        assert_eq!(block, [0x41EA_3A0A, 0x94BA_A940]);
        key.decrypt_block(&mut block);
        assert_eq!(block, [0, 0]);
    }

    #[test]
    fn encrypt_decrypt_inverse() {
        let key = TeaKey::new([0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210]);
        for v0 in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            for v1 in [0u32, 42, 0xCAFE_BABE, u32::MAX] {
                let mut block = [v0, v1];
                key.encrypt_block(&mut block);
                assert_ne!(block, [v0, v1], "cipher must change the block");
                key.decrypt_block(&mut block);
                assert_eq!(block, [v0, v1]);
            }
        }
    }

    #[test]
    fn byte_interface_round_trips() {
        let key = TeaKey::from_bytes(&[7u8; 16]);
        let original = *b"calendar";
        let mut bytes = original;
        key.encrypt_bytes(&mut bytes);
        assert_ne!(bytes, original);
        key.decrypt_bytes(&mut bytes);
        assert_eq!(bytes, original);
    }

    #[test]
    fn different_keys_differ() {
        let k1 = TeaKey::new([1, 2, 3, 4]);
        let k2 = TeaKey::new([1, 2, 3, 5]);
        let mut b1 = [99u32, 100];
        let mut b2 = [99u32, 100];
        k1.encrypt_block(&mut b1);
        k2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn key_from_bytes_layout() {
        let mut bytes = [0u8; 16];
        bytes[0] = 1; // little-endian word 0
        bytes[15] = 0x80;
        let key = TeaKey::from_bytes(&bytes);
        assert_eq!(key.0[0], 1);
        assert_eq!(key.0[3], 0x8000_0000);
    }

    #[test]
    fn passphrase_key_is_deterministic_and_sensitive() {
        let a = key_from_passphrase("correct horse battery staple");
        let b = key_from_passphrase("correct horse battery staple");
        let c = key_from_passphrase("correct horse battery stapl3");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(key_from_passphrase(""), key_from_passphrase("\0"));
        // Length extension of the trailing block matters.
        assert_ne!(key_from_passphrase("a"), key_from_passphrase("a\0"));
        // Longer-than-one-block passphrases absorb every chunk.
        assert_ne!(
            key_from_passphrase("0123456789abcdefX"),
            key_from_passphrase("0123456789abcdefY")
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn block_round_trip(v0 in any::<u32>(), v1 in any::<u32>(), k in any::<[u32; 4]>()) {
            let key = TeaKey::new(k);
            let mut block = [v0, v1];
            key.encrypt_block(&mut block);
            key.decrypt_block(&mut block);
            prop_assert_eq!(block, [v0, v1]);
        }

        #[test]
        fn bytes_round_trip(bytes in any::<[u8; 8]>(), k in any::<[u8; 16]>()) {
            let key = TeaKey::from_bytes(&k);
            let mut buf = bytes;
            key.encrypt_bytes(&mut buf);
            key.decrypt_bytes(&mut buf);
            prop_assert_eq!(buf, bytes);
        }
    }
}
