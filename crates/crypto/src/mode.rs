//! CBC mode with PKCS#7 padding over TEA blocks.
//!
//! Credentials vary in length (user id + password), so the §5.4 envelope
//! needs a chaining mode. The ciphertext layout is `IV (8 bytes) ‖ blocks`;
//! the IV is drawn by the caller (normally from `rand`) so identical
//! credentials produce different blobs on every request — defeating the
//! trivial replay-spotting the prototype would otherwise allow.

use syd_types::{SydError, SydResult};

use crate::tea::{TeaKey, BLOCK_SIZE};

/// Encrypts `plaintext` under `key` with the given 8-byte IV.
/// Output = IV ‖ CBC ciphertext (PKCS#7-padded, so always ≥ 16 bytes).
pub fn cbc_encrypt(key: &TeaKey, iv: [u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
    let pad = BLOCK_SIZE - (plaintext.len() % BLOCK_SIZE);
    let mut out = Vec::with_capacity(BLOCK_SIZE + plaintext.len() + pad);
    out.extend_from_slice(&iv);

    let mut prev = iv;
    let mut offset = 0;
    while offset <= plaintext.len() {
        let mut block = [0u8; BLOCK_SIZE];
        let remaining = plaintext.len() - offset;
        if remaining >= BLOCK_SIZE {
            block.copy_from_slice(&plaintext[offset..offset + BLOCK_SIZE]);
        } else {
            // Final (possibly empty) block: PKCS#7 pad.
            block[..remaining].copy_from_slice(&plaintext[offset..]);
            for b in block.iter_mut().skip(remaining) {
                *b = pad as u8;
            }
        }
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        key.encrypt_bytes(&mut block);
        out.extend_from_slice(&block);
        prev = block;
        offset += BLOCK_SIZE;
    }
    out
}

/// Decrypts a blob produced by [`cbc_encrypt`]. Fails on truncated input,
/// non-block-aligned length or corrupt padding.
pub fn cbc_decrypt(key: &TeaKey, ciphertext: &[u8]) -> SydResult<Vec<u8>> {
    if ciphertext.len() < 2 * BLOCK_SIZE || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(SydError::Codec(format!(
            "ciphertext length {} is not IV + non-empty block multiple",
            ciphertext.len()
        )));
    }
    let mut prev = [0u8; BLOCK_SIZE];
    prev.copy_from_slice(&ciphertext[..BLOCK_SIZE]);
    let mut out = Vec::with_capacity(ciphertext.len() - BLOCK_SIZE);
    for chunk in ciphertext[BLOCK_SIZE..].chunks_exact(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        let this_cipher = block;
        key.decrypt_bytes(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        out.extend_from_slice(&block);
        prev = this_cipher;
    }
    // Strip and validate PKCS#7 padding.
    let Some(&last) = out.last() else {
        return Err(SydError::Codec("empty ciphertext body".into()));
    };
    let pad = last as usize;
    if pad == 0 || pad > BLOCK_SIZE || pad > out.len() {
        return Err(SydError::Codec("corrupt padding".into()));
    }
    if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(SydError::Codec("corrupt padding".into()));
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn key() -> TeaKey {
        TeaKey::new([0xA5A5_A5A5, 0x5A5A_5A5A, 0x0F0F_0F0F, 0xF0F0_F0F0])
    }

    #[test]
    fn round_trip_various_lengths() {
        for len in 0..40 {
            let plaintext: Vec<u8> = (0..len as u8).collect();
            let blob = cbc_encrypt(&key(), [9; BLOCK_SIZE], &plaintext);
            assert_eq!(blob.len() % BLOCK_SIZE, 0);
            assert!(blob.len() >= 2 * BLOCK_SIZE);
            let back = cbc_decrypt(&key(), &blob).unwrap();
            assert_eq!(back, plaintext, "len={len}");
        }
    }

    #[test]
    fn different_ivs_give_different_ciphertexts() {
        let pt = b"phil:secret";
        let a = cbc_encrypt(&key(), [0; 8], pt);
        let b = cbc_encrypt(&key(), [1; 8], pt);
        assert_ne!(a, b);
        assert_eq!(cbc_decrypt(&key(), &a).unwrap(), pt);
        assert_eq!(cbc_decrypt(&key(), &b).unwrap(), pt);
    }

    #[test]
    fn wrong_key_fails_or_garbles() {
        let pt = b"phil:secret";
        let blob = cbc_encrypt(&key(), [3; 8], pt);
        let wrong = TeaKey::new([1, 2, 3, 4]);
        match cbc_decrypt(&wrong, &blob) {
            Err(_) => {}                            // padding check caught it
            Ok(garbled) => assert_ne!(garbled, pt), // or plaintext is garbage
        }
    }

    #[test]
    fn truncated_and_misaligned_rejected() {
        let blob = cbc_encrypt(&key(), [0; 8], b"hello");
        assert!(cbc_decrypt(&key(), &blob[..8]).is_err());
        assert!(cbc_decrypt(&key(), &blob[..blob.len() - 3]).is_err());
        assert!(cbc_decrypt(&key(), &[]).is_err());
    }

    #[test]
    fn tampered_padding_rejected() {
        let blob = cbc_encrypt(&key(), [0; 8], b"x");
        // Flipping last-block bytes corrupts padding with high probability;
        // accept either a padding error or a garbled (non-equal) result.
        let mut tampered = blob.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        match cbc_decrypt(&key(), &tampered) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"x"),
        }
    }

    #[test]
    fn cbc_chains_blocks() {
        // Two identical plaintext blocks must encrypt differently.
        let pt = [7u8; 16];
        let blob = cbc_encrypt(&key(), [0; 8], &pt);
        let b1 = &blob[8..16];
        let b2 = &blob[16..24];
        assert_ne!(b1, b2);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip(pt in proptest::collection::vec(any::<u8>(), 0..256),
                      iv in any::<[u8; 8]>(),
                      k in any::<[u32; 4]>()) {
            let key = TeaKey::new(k);
            let blob = cbc_encrypt(&key, iv, &pt);
            prop_assert_eq!(cbc_decrypt(&key, &blob).unwrap(), pt);
        }

        #[test]
        fn decrypt_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = cbc_decrypt(&TeaKey::new([1, 2, 3, 4]), &bytes);
        }
    }
}
