//! TEA cipher and request authentication — the paper's §5.4 security layer.
//!
//! The prototype authenticated every remote request: "A 32-bit key is used
//! to encrypt the user id and password. Encryption is done using the Tiny
//! Encryption Algorithm. The encrypted user id and password are sent as
//! parameters along with every request" (§5.4, citing Wheeler & Needham
//! \[22\]).
//!
//! We implement TEA exactly as published — 64-bit blocks, **128-bit** key,
//! 32 cycles (64 Feistel rounds). The paper's "32-bit key" contradicts
//! TEA's definition and is recorded in DESIGN.md as a paper erratum; a
//! 32-bit key would also be trivially brute-forceable, so the prototype
//! almost certainly used the standard 128-bit key schedule too.
//!
//! Layers:
//!
//! * [`tea`] — the raw block cipher.
//! * [`mode`] — CBC chaining with PKCS#7 padding and a random IV, so
//!   variable-length credential envelopes can be encrypted.
//! * [`auth`] — the credential envelope (`user id : password`) and the
//!   server-side authenticator backed by each device's authorized-user
//!   table, exactly the §5.4 flow: encrypt on the client, decrypt and
//!   compare on the server before processing the request.
//!
//! TEA is *not* a modern cipher (related-key weaknesses are well known);
//! it is implemented here because reproducing the paper requires it, and
//! the trait-shaped API would let a deployment swap in something current.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod mode;
pub mod tea;

pub use auth::{AuthTable, Authenticator, Credentials};
pub use mode::{cbc_decrypt, cbc_encrypt};
pub use tea::{key_from_passphrase, TeaKey, BLOCK_SIZE};
