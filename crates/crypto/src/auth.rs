//! Credential envelopes and the per-device authorized-user table (§5.4).
//!
//! Flow, exactly as the paper describes it:
//!
//! 1. Each user has a unique id and password; each device's database has a
//!    table of authorized users ([`AuthTable`]).
//! 2. The client encrypts `user id ‖ password` with TEA and attaches the
//!    blob to every request ([`Authenticator::seal`]).
//! 3. The server decrypts, looks the user up, compares the password, and
//!    only then processes the request ([`Authenticator::verify`]).
//!
//! The TEA key is a pre-shared deployment secret (derived from a
//! passphrase); the prototype did the same with a hard-coded key.

use std::collections::HashMap;

use parking_lot::RwLock;
use syd_types::{SydError, SydResult, UserId};

use crate::mode::{cbc_decrypt, cbc_encrypt};
use crate::tea::{TeaKey, BLOCK_SIZE};

/// A user's clear-text credentials.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Credentials {
    /// The user.
    pub user: UserId,
    /// The shared password.
    pub password: String,
}

impl Credentials {
    /// Builds credentials.
    pub fn new(user: UserId, password: impl Into<String>) -> Self {
        Credentials {
            user,
            password: password.into(),
        }
    }

    /// Canonical byte layout: `user id (8 LE bytes) ‖ password utf-8`.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.password.len());
        out.extend_from_slice(&self.user.raw().to_le_bytes());
        out.extend_from_slice(self.password.as_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> SydResult<Credentials> {
        if bytes.len() < 8 {
            return Err(SydError::Codec("credential envelope too short".into()));
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[..8]);
        let password = String::from_utf8(bytes[8..].to_vec())
            .map_err(|_| SydError::Codec("credential password is not utf-8".into()))?;
        Ok(Credentials {
            user: UserId::new(u64::from_le_bytes(id)),
            password,
        })
    }
}

/// The per-device table of authorized users and their passwords — the
/// "table containing the user id and password of authorized users" of §5.4.
#[derive(Default, Debug)]
pub struct AuthTable {
    users: RwLock<HashMap<UserId, String>>,
}

impl AuthTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an authorized user.
    pub fn authorize(&self, user: UserId, password: impl Into<String>) {
        self.users.write().insert(user, password.into());
    }

    /// Removes a user's access.
    pub fn revoke(&self, user: UserId) {
        self.users.write().remove(&user);
    }

    /// Checks a clear-text credential pair.
    pub fn check(&self, creds: &Credentials) -> bool {
        self.users
            .read()
            .get(&creds.user)
            .is_some_and(|stored| stored == &creds.password)
    }

    /// Number of authorized users.
    pub fn len(&self) -> usize {
        self.users.read().len()
    }

    /// True iff no user is authorized.
    pub fn is_empty(&self) -> bool {
        self.users.read().is_empty()
    }
}

/// Seals and verifies credential blobs under the deployment's shared key.
pub struct Authenticator {
    key: TeaKey,
    table: AuthTable,
}

impl Authenticator {
    /// Builds an authenticator with an explicit key.
    pub fn new(key: TeaKey) -> Self {
        Authenticator {
            key,
            table: AuthTable::new(),
        }
    }

    /// Builds an authenticator from a deployment passphrase.
    pub fn from_passphrase(passphrase: &str) -> Self {
        Self::new(crate::tea::key_from_passphrase(passphrase))
    }

    /// The authorized-user table.
    pub fn table(&self) -> &AuthTable {
        &self.table
    }

    /// Encrypts credentials into the blob attached to every request.
    /// `iv` should be fresh random bytes per call.
    pub fn seal(&self, creds: &Credentials, iv: [u8; BLOCK_SIZE]) -> Vec<u8> {
        cbc_encrypt(&self.key, iv, &creds.to_bytes())
    }

    /// Decrypts a blob and checks it against the authorized-user table.
    /// Returns the authenticated user on success; [`SydError::AuthFailed`]
    /// carries the claimed user id (or user 0 when the blob is garbage).
    pub fn verify(&self, blob: &[u8]) -> SydResult<UserId> {
        let plain =
            cbc_decrypt(&self.key, blob).map_err(|_| SydError::AuthFailed(UserId::new(0)))?;
        let creds =
            Credentials::from_bytes(&plain).map_err(|_| SydError::AuthFailed(UserId::new(0)))?;
        if self.table.check(&creds) {
            Ok(creds.user)
        } else {
            Err(SydError::AuthFailed(creds.user))
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    fn authenticator() -> Authenticator {
        let auth = Authenticator::from_passphrase("yamacraw embedded software");
        auth.table().authorize(UserId::new(1), "phils-password");
        auth.table().authorize(UserId::new(2), "andys-password");
        auth
    }

    #[test]
    fn seal_verify_round_trip() {
        let auth = authenticator();
        let blob = auth.seal(&Credentials::new(UserId::new(1), "phils-password"), [7; 8]);
        assert_eq!(auth.verify(&blob).unwrap(), UserId::new(1));
    }

    #[test]
    fn wrong_password_rejected_with_claimed_user() {
        let auth = authenticator();
        let blob = auth.seal(&Credentials::new(UserId::new(1), "guess"), [7; 8]);
        assert_eq!(
            auth.verify(&blob).unwrap_err(),
            SydError::AuthFailed(UserId::new(1))
        );
    }

    #[test]
    fn unknown_user_rejected() {
        let auth = authenticator();
        let blob = auth.seal(&Credentials::new(UserId::new(99), "pw"), [7; 8]);
        assert!(matches!(
            auth.verify(&blob).unwrap_err(),
            SydError::AuthFailed(u) if u == UserId::new(99)
        ));
    }

    #[test]
    fn revoked_user_rejected() {
        let auth = authenticator();
        let blob = auth.seal(&Credentials::new(UserId::new(2), "andys-password"), [1; 8]);
        assert_eq!(auth.verify(&blob).unwrap(), UserId::new(2));
        auth.table().revoke(UserId::new(2));
        assert!(auth.verify(&blob).is_err());
    }

    #[test]
    fn garbage_blob_rejected() {
        let auth = authenticator();
        assert!(auth.verify(&[]).is_err());
        assert!(auth.verify(&[1, 2, 3]).is_err());
        assert!(auth.verify(&[0; 64]).is_err());
    }

    #[test]
    fn blob_from_different_key_rejected() {
        let auth = authenticator();
        let other = Authenticator::from_passphrase("different deployment");
        other.table().authorize(UserId::new(1), "phils-password");
        let blob = other.seal(&Credentials::new(UserId::new(1), "phils-password"), [7; 8]);
        assert!(auth.verify(&blob).is_err());
    }

    #[test]
    fn fresh_ivs_change_the_blob_but_not_the_outcome() {
        let auth = authenticator();
        let creds = Credentials::new(UserId::new(1), "phils-password");
        let a = auth.seal(&creds, [1; 8]);
        let b = auth.seal(&creds, [2; 8]);
        assert_ne!(a, b);
        assert_eq!(auth.verify(&a).unwrap(), auth.verify(&b).unwrap());
    }

    #[test]
    fn empty_password_supported() {
        let auth = Authenticator::from_passphrase("k");
        auth.table().authorize(UserId::new(5), "");
        let blob = auth.seal(&Credentials::new(UserId::new(5), ""), [0; 8]);
        assert_eq!(auth.verify(&blob).unwrap(), UserId::new(5));
    }

    #[test]
    fn auth_table_management() {
        let table = AuthTable::new();
        assert!(table.is_empty());
        table.authorize(UserId::new(1), "a");
        table.authorize(UserId::new(1), "b"); // replace
        assert_eq!(table.len(), 1);
        assert!(!table.check(&Credentials::new(UserId::new(1), "a")));
        assert!(table.check(&Credentials::new(UserId::new(1), "b")));
    }

    #[test]
    fn unicode_password_round_trips() {
        let auth = Authenticator::from_passphrase("k");
        auth.table().authorize(UserId::new(7), "pässwörd–日本語");
        let blob = auth.seal(&Credentials::new(UserId::new(7), "pässwörd–日本語"), [3; 8]);
        assert_eq!(auth.verify(&blob).unwrap(), UserId::new(7));
    }
}
