//! SyDFleet — the mobile fleet application of Figure 2.
//!
//! The paper lists a fleet application among its sample SyDApps (built in
//! the companion paper, reference \[1\]: *Mobile Fleet Applications using
//! SOAP and SyD Middleware Technologies*). Vehicles are SyD devices with
//! embedded stores; a dispatcher coordinates them:
//!
//! * **Position tracking** — each vehicle's `position` entity carries a
//!   subscription link to the dispatcher, so every movement flows to the
//!   dispatcher's fleet table automatically (§4.1's "automatic flow of
//!   information from a source entity to other entities that subscribe").
//! * **Group queries** — "find the nearest free vehicle" is an engine
//!   group invocation with client-side aggregation (§3.1c).
//! * **Zone reassignment** — moving `k` vehicles into a busy zone uses a
//!   negotiation-or (at least k of n) link action: only vehicles not on a
//!   delivery accept, and the reassignment happens only if the quorum is
//!   met (§4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, Weak};

use parking_lot::RwLock;
use syd_core::links::LinkRef;
use syd_core::negotiate::Participant;
use syd_core::{DeviceRuntime, EntityHandler, SubscriptionHandler};
use syd_store::{Column, ColumnType, Predicate, Schema, Store};
use syd_types::{ServiceName, SydError, SydResult, UserId, Value};

/// The fleet service name.
pub fn fleet_service() -> ServiceName {
    ServiceName::new("fleet")
}

/// Entity name of a vehicle's position.
pub const POSITION_ENTITY: &str = "position";
/// Entity name of a vehicle's zone assignment.
pub const ZONE_ENTITY: &str = "zone";

const T_STATE: &str = "vehicle_state";

/// A 2-D position (city-grid coordinates).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Position {
    /// East-west coordinate.
    pub x: f64,
    /// North-south coordinate.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to `other`.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// One vehicle: a SyD device with position, zone and delivery state.
pub struct Vehicle {
    device: DeviceRuntime,
    store: Store,
}

impl Vehicle {
    /// Installs the vehicle application on a device.
    pub fn install(device: &DeviceRuntime) -> SydResult<Arc<Vehicle>> {
        let store = device.store().clone();
        store.create_table(Schema::new(
            T_STATE,
            vec![
                Column::required("key", ColumnType::Str),
                Column::nullable("value", ColumnType::Any),
            ],
            &["key"],
        )?)?;
        let vehicle = Arc::new(Vehicle {
            device: device.clone(),
            store,
        });
        vehicle.set_state("x", Value::F64(0.0))?;
        vehicle.set_state("y", Value::F64(0.0))?;
        vehicle.set_state("zone", Value::str("depot"))?;
        vehicle.set_state("delivery", Value::Null)?;

        device.set_entity_handler(Arc::new(VehicleEntityHandler(Arc::downgrade(&vehicle))));
        vehicle.register_services()?;
        Ok(vehicle)
    }

    /// The vehicle's user id.
    pub fn user(&self) -> UserId {
        self.device.user()
    }

    /// The underlying device.
    pub fn device(&self) -> &DeviceRuntime {
        &self.device
    }

    fn set_state(&self, key: &str, value: Value) -> SydResult<()> {
        if self
            .store
            .get_by_key(T_STATE, &[Value::str(key)])?
            .is_some()
        {
            self.store.update(
                T_STATE,
                &Predicate::Eq("key".into(), Value::str(key)),
                &[("value".into(), value)],
            )?;
        } else {
            self.store.insert(T_STATE, vec![Value::str(key), value])?;
        }
        Ok(())
    }

    fn state(&self, key: &str) -> SydResult<Value> {
        Ok(self
            .store
            .get_by_key(T_STATE, &[Value::str(key)])?
            .map_or(Value::Null, |row| row.values[1].clone()))
    }

    /// Current position.
    pub fn position(&self) -> SydResult<Position> {
        Ok(Position {
            x: self.state("x")?.as_f64()?,
            y: self.state("y")?.as_f64()?,
        })
    }

    /// Current zone.
    pub fn zone(&self) -> SydResult<String> {
        self.state("zone")?.as_str().map(str::to_owned)
    }

    /// Current delivery, if on one.
    pub fn delivery(&self) -> SydResult<Option<String>> {
        match self.state("delivery")? {
            Value::Null => Ok(None),
            v => Ok(Some(v.as_str()?.to_owned())),
        }
    }

    /// Moves the vehicle; position subscribers are notified through the
    /// coordination link on the `position` entity.
    pub fn move_to(&self, position: Position) -> SydResult<()> {
        self.set_state("x", Value::F64(position.x))?;
        self.set_state("y", Value::F64(position.y))?;
        let payload = Value::map([
            ("vehicle", Value::from(self.user().raw())),
            ("x", Value::F64(position.x)),
            ("y", Value::F64(position.y)),
        ]);
        let _ = self.device.entity_changed(POSITION_ENTITY, &payload)?;
        Ok(())
    }

    /// Marks the delivery done and becomes available again.
    pub fn complete_delivery(&self) -> SydResult<()> {
        self.set_state("delivery", Value::Null)
    }

    fn register_services(self: &Arc<Self>) -> SydResult<()> {
        let svc = fleet_service();

        // position() -> {x, y, zone, delivery}
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "position",
            Arc::new(move |_ctx, _args: &[Value]| {
                let v = weak.upgrade().ok_or(SydError::Shutdown)?;
                Ok(Value::map([
                    ("x", v.state("x")?),
                    ("y", v.state("y")?),
                    ("zone", v.state("zone")?),
                    ("delivery", v.state("delivery")?),
                ]))
            }),
        )?;

        // assign_delivery(label) -> Bool (false when already busy)
        let weak = Arc::downgrade(self);
        self.device.register_service(
            &svc,
            "assign_delivery",
            Arc::new(move |_ctx, args: &[Value]| {
                let v = weak.upgrade().ok_or(SydError::Shutdown)?;
                let label = args
                    .first()
                    .ok_or_else(|| SydError::Protocol("needs label".into()))?
                    .as_str()?;
                if !v.state("delivery")?.is_null() {
                    return Ok(Value::Bool(false));
                }
                v.set_state("delivery", Value::str(label))?;
                Ok(Value::Bool(true))
            }),
        )?;

        Ok(())
    }
}

/// Negotiated changes to a vehicle's entities (zone reassignment).
struct VehicleEntityHandler(Weak<Vehicle>);

impl EntityHandler for VehicleEntityHandler {
    fn prepare(&self, entity: &str, _change: &Value) -> SydResult<()> {
        let v = self.0.upgrade().ok_or(SydError::Shutdown)?;
        match entity {
            ZONE_ENTITY => {
                // Only idle vehicles accept a reassignment.
                if v.state("delivery")?.is_null() {
                    Ok(())
                } else {
                    Err(SydError::App("vehicle is on a delivery".into()))
                }
            }
            _ => Ok(()),
        }
    }

    fn commit(&self, entity: &str, change: &Value) -> SydResult<()> {
        let v = self.0.upgrade().ok_or(SydError::Shutdown)?;
        if entity == ZONE_ENTITY {
            v.set_state("zone", Value::str(change.get("zone")?.as_str()?))?;
        }
        Ok(())
    }

    fn abort(&self, _entity: &str, _change: &Value) {}
}

/// The dispatcher: tracks vehicles and coordinates assignments.
pub struct Dispatcher {
    device: DeviceRuntime,
    /// Last known positions, fed by subscription links.
    positions: RwLock<Vec<(UserId, Position)>>,
}

impl Dispatcher {
    /// Installs the dispatcher application on a device.
    pub fn install(device: &DeviceRuntime) -> SydResult<Arc<Dispatcher>> {
        let dispatcher = Arc::new(Dispatcher {
            device: device.clone(),
            positions: RwLock::new(Vec::new()),
        });
        device.set_subscription_handler(Arc::new(DispatcherFeed(Arc::downgrade(&dispatcher))));
        Ok(dispatcher)
    }

    /// The dispatcher's user id.
    pub fn user(&self) -> UserId {
        self.device.user()
    }

    /// Subscribes to a vehicle's position updates by installing a
    /// subscription link *at the vehicle* anchored on its position entity.
    pub fn track(&self, vehicle: UserId) -> SydResult<()> {
        let back = syd_core::links::Link {
            id: syd_types::LinkId::new(0),
            kind: syd_core::links::LinkKind::Subscription,
            status: syd_core::links::LinkStatus::Permanent,
            entity: POSITION_ENTITY.to_owned(),
            refs: vec![LinkRef::new(self.user(), "fleet-board", "position_report")],
            priority: syd_types::Priority::NORMAL,
            created: self.device.clock().now(),
            expires: None,
            corr: format!("track:{}:{}", self.user().raw(), vehicle.raw()),
        };
        self.device.engine().invoke(
            vehicle,
            &syd_core::negotiate::link_service(),
            "install_link",
            vec![back.to_value()],
        )?;
        Ok(())
    }

    /// Stops tracking a vehicle (cascade-deletes the tracking link).
    pub fn untrack(&self, vehicle: UserId) -> SydResult<()> {
        let corr = format!("track:{}:{}", self.user().raw(), vehicle.raw());
        self.device.engine().invoke(
            vehicle,
            &syd_core::negotiate::link_service(),
            "delete_by_corr",
            vec![Value::str(corr), Value::list([])],
        )?;
        Ok(())
    }

    /// Last reported position of each tracked vehicle.
    pub fn board(&self) -> Vec<(UserId, Position)> {
        self.positions.read().clone()
    }

    /// Live group query: every vehicle's position right now, aggregated.
    pub fn poll_positions(&self, vehicles: &[UserId]) -> Vec<(UserId, Position)> {
        let result =
            self.device
                .engine()
                .invoke_group(vehicles, &fleet_service(), "position", vec![]);
        result
            .outcomes
            .into_iter()
            .filter_map(|(user, outcome)| {
                let v = outcome.ok()?;
                Some((
                    user,
                    Position {
                        x: v.get("x").ok()?.as_f64().ok()?,
                        y: v.get("y").ok()?.as_f64().ok()?,
                    },
                ))
            })
            .collect()
    }

    /// Finds the nearest idle vehicle to `target` and assigns it the
    /// delivery. Returns the chosen vehicle.
    pub fn dispatch_delivery(
        &self,
        vehicles: &[UserId],
        target: Position,
        label: &str,
    ) -> SydResult<UserId> {
        let svc = fleet_service();
        let result = self
            .device
            .engine()
            .invoke_group(vehicles, &svc, "position", vec![]);
        let mut candidates: Vec<(UserId, f64)> = result
            .outcomes
            .iter()
            .filter_map(|(user, outcome)| {
                let v = outcome.as_ref().ok()?;
                if !v.get("delivery").ok()?.is_null() {
                    return None; // busy
                }
                let pos = Position {
                    x: v.get("x").ok()?.as_f64().ok()?,
                    y: v.get("y").ok()?.as_f64().ok()?,
                };
                Some((*user, pos.distance(target)))
            })
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        for (user, _) in candidates {
            let out = self.device.engine().invoke(
                user,
                &svc,
                "assign_delivery",
                vec![Value::str(label)],
            )?;
            if out.as_bool().unwrap_or(false) {
                return Ok(user);
            }
        }
        Err(SydError::App("no idle vehicle available".into()))
    }

    /// Reassigns at least `k` of `vehicles` to `zone` via negotiation-or:
    /// the move happens only if `k` idle vehicles accept; busy vehicles
    /// decline and keep their zone.
    pub fn reassign_zone(&self, vehicles: &[UserId], zone: &str, k: u32) -> SydResult<Vec<UserId>> {
        let change = Value::map([("zone", Value::str(zone))]);
        let parts: Vec<Participant> = vehicles
            .iter()
            .map(|&v| Participant::new(v, ZONE_ENTITY, change.clone()))
            .collect();
        let outcome = self.device.negotiator().negotiate_or(k, &parts)?;
        if !outcome.satisfied {
            return Err(SydError::ConstraintFailed(format!(
                "only {} of {} vehicles available, needed {k}",
                outcome.committed.len(),
                vehicles.len()
            )));
        }
        Ok(outcome.committed)
    }
}

/// Applies position reports to the dispatcher's board.
struct DispatcherFeed(Weak<Dispatcher>);

impl SubscriptionHandler for DispatcherFeed {
    fn on_notify(&self, _entity: &str, action: &str, payload: &Value) -> SydResult<Value> {
        let dispatcher = self.0.upgrade().ok_or(SydError::Shutdown)?;
        if action == "position_report" {
            let vehicle = UserId::new(payload.get("vehicle")?.as_i64()? as u64);
            let pos = Position {
                x: payload.get("x")?.as_f64()?,
                y: payload.get("y")?.as_f64()?,
            };
            let mut board = dispatcher.positions.write();
            if let Some(entry) = board.iter_mut().find(|(u, _)| *u == vehicle) {
                entry.1 = pos;
            } else {
                board.push((vehicle, pos));
            }
        }
        Ok(Value::Null)
    }
}

/// Builds a fleet deployment: one dispatcher plus `n` vehicles, with the
/// dispatcher tracking every vehicle.
pub fn deploy_fleet(
    env: &syd_core::SydEnv,
    n: usize,
) -> SydResult<(Arc<Dispatcher>, Vec<Arc<Vehicle>>)> {
    let dispatcher_device = env.device("dispatcher", "dispatch-pw")?;
    let dispatcher = Dispatcher::install(&dispatcher_device)?;
    let mut vehicles = Vec::with_capacity(n);
    for i in 0..n {
        let device = env.device(&format!("vehicle{i}"), "vehicle-pw")?;
        let vehicle = Vehicle::install(&device)?;
        dispatcher.track(vehicle.user())?;
        vehicles.push(vehicle);
    }
    Ok((dispatcher, vehicles))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;
    use std::time::{Duration, Instant};
    use syd_core::SydEnv;
    use syd_net::NetConfig;

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(3);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn position_reports_flow_over_subscription_links() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let (dispatcher, vehicles) = deploy_fleet(&env, 3).unwrap();
        vehicles[0].move_to(Position { x: 3.0, y: 4.0 }).unwrap();
        vehicles[1].move_to(Position { x: 1.0, y: 1.0 }).unwrap();
        wait_for(
            || dispatcher.board().len() == 2,
            "two position reports on the board",
        );
        let board = dispatcher.board();
        let v0 = board
            .iter()
            .find(|(u, _)| *u == vehicles[0].user())
            .unwrap();
        assert_eq!(v0.1, Position { x: 3.0, y: 4.0 });

        // Moving again updates rather than duplicates.
        vehicles[0].move_to(Position { x: 5.0, y: 5.0 }).unwrap();
        wait_for(
            || {
                dispatcher
                    .board()
                    .iter()
                    .any(|(u, p)| *u == vehicles[0].user() && p.x == 5.0)
            },
            "board update",
        );
        assert_eq!(dispatcher.board().len(), 2);
    }

    #[test]
    fn untrack_stops_reports() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let (dispatcher, vehicles) = deploy_fleet(&env, 1).unwrap();
        vehicles[0].move_to(Position { x: 1.0, y: 0.0 }).unwrap();
        wait_for(|| dispatcher.board().len() == 1, "first report");
        dispatcher.untrack(vehicles[0].user()).unwrap();
        assert_eq!(vehicles[0].device().links().count().unwrap(), 0);
        vehicles[0].move_to(Position { x: 9.0, y: 9.0 }).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let board = dispatcher.board();
        assert_eq!(
            board[0].1,
            Position { x: 1.0, y: 0.0 },
            "no further updates"
        );
    }

    #[test]
    fn nearest_idle_vehicle_gets_the_delivery() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let (dispatcher, vehicles) = deploy_fleet(&env, 3).unwrap();
        let users: Vec<UserId> = vehicles.iter().map(|v| v.user()).collect();
        vehicles[0].move_to(Position { x: 0.0, y: 0.0 }).unwrap();
        vehicles[1].move_to(Position { x: 10.0, y: 0.0 }).unwrap();
        vehicles[2].move_to(Position { x: 2.0, y: 0.0 }).unwrap();

        let chosen = dispatcher
            .dispatch_delivery(&users, Position { x: 3.0, y: 0.0 }, "parcel-1")
            .unwrap();
        assert_eq!(chosen, vehicles[2].user());
        assert_eq!(vehicles[2].delivery().unwrap(), Some("parcel-1".into()));

        // Vehicle 2 is now busy; next delivery to the same spot goes to 0.
        let chosen = dispatcher
            .dispatch_delivery(&users, Position { x: 3.0, y: 0.0 }, "parcel-2")
            .unwrap();
        assert_eq!(chosen, vehicles[0].user());

        vehicles[2].complete_delivery().unwrap();
        assert_eq!(vehicles[2].delivery().unwrap(), None);
    }

    #[test]
    fn zone_reassignment_needs_k_idle_vehicles() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let (dispatcher, vehicles) = deploy_fleet(&env, 4).unwrap();
        let users: Vec<UserId> = vehicles.iter().map(|v| v.user()).collect();

        // Two vehicles are on deliveries.
        dispatcher
            .dispatch_delivery(&users, Position { x: 0.0, y: 0.0 }, "a")
            .unwrap();
        dispatcher
            .dispatch_delivery(&users, Position { x: 0.0, y: 0.0 }, "b")
            .unwrap();

        // Need 3 idle: impossible.
        let err = dispatcher.reassign_zone(&users, "uptown", 3).unwrap_err();
        assert!(matches!(err, SydError::ConstraintFailed(_)), "{err}");
        for v in &vehicles {
            assert_eq!(v.zone().unwrap(), "depot", "no partial reassignment");
        }

        // Need 2 idle: works, and exactly the idle ones moved.
        let moved = dispatcher.reassign_zone(&users, "uptown", 2).unwrap();
        assert_eq!(moved.len(), 2);
        let mut uptown = 0;
        for v in &vehicles {
            if v.zone().unwrap() == "uptown" {
                uptown += 1;
                assert!(v.delivery().unwrap().is_none(), "busy vehicle moved");
            }
        }
        assert_eq!(uptown, 2);
    }

    #[test]
    fn poll_positions_aggregates_the_group() {
        let env = SydEnv::new_insecure(NetConfig::ideal());
        let (dispatcher, vehicles) = deploy_fleet(&env, 5).unwrap();
        let users: Vec<UserId> = vehicles.iter().map(|v| v.user()).collect();
        for (i, v) in vehicles.iter().enumerate() {
            v.move_to(Position {
                x: i as f64,
                y: 0.0,
            })
            .unwrap();
        }
        let polled = dispatcher.poll_positions(&users);
        assert_eq!(polled.len(), 5);
        for (i, v) in vehicles.iter().enumerate() {
            let (_, p) = polled.iter().find(|(u, _)| *u == v.user()).unwrap();
            assert_eq!(p.x, i as f64);
        }
    }
}
