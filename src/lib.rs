//! # SyD — System on Devices, in Rust
//!
//! A full reproduction of *Implementation of a Calendar Application Based
//! on SyD Coordination Links* (Prasad et al., IPDPS 2003): the SyD
//! middleware kernel, its coordination links, and the three sample
//! applications (calendar, fleet, bidding) on a simulated mobile network.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `syd-types` | ids, values, time, errors |
//! | [`wire`] | `syd-wire` | binary codec + message envelopes |
//! | [`transport`] | `syd-transport` | pluggable transport: simulated router + framed loopback/LAN TCP |
//! | [`net`] | `syd-net` | RPC nodes, worker pools, deadlines/retries |
//! | [`store`] | `syd-store` | embedded relational store with triggers |
//! | [`crypto`] | `syd-crypto` | TEA cipher + request authentication |
//! | [`kernel`] | `syd-core` | SyD kernel: directory, listener, engine, events, links, negotiation, proxies |
//! | [`check`] | `syd-check` | protocol invariant checker: journal replay, lock-leak and double-book oracles |
//! | [`calendar`] | `syd-calendar` | the calendar-of-meetings application + baseline |
//! | [`trace`] | `syd-trace` | timed span trees, cross-device assembly, critical-path attribution |
//! | [`obs`] | (this crate) | one-shot span-ring snapshot (`sydtop`-style) |
//! | [`fleet`] | `syd-fleet` | vehicle fleet application |
//! | [`bidding`] | `syd-bidding` | price-is-right application |
//!
//! ## Quickstart
//!
//! ```
//! use syd::kernel::SydEnv;
//! use syd::calendar::{CalendarApp, MeetingSpec, MeetingStatus};
//! use syd::net::NetConfig;
//! use syd::types::TimeSlot;
//!
//! // A deployment: simulated network + directory + TEA authentication.
//! let env = SydEnv::new(NetConfig::ideal(), "deployment passphrase");
//! let phil = CalendarApp::install(&env.device("phil", "pw-phil").unwrap()).unwrap();
//! let andy = CalendarApp::install(&env.device("andy", "pw-andy").unwrap()).unwrap();
//!
//! // Phil calls a meeting with Andy; both are free, so it confirms.
//! let outcome = phil
//!     .schedule(MeetingSpec::plain("design review", TimeSlot::new(1, 14), vec![andy.user()]))
//!     .unwrap();
//! assert_eq!(outcome.status, MeetingStatus::Confirmed);
//! ```

#![forbid(unsafe_code)]

pub mod obs;

pub use syd_bidding as bidding;
pub use syd_calendar as calendar;
pub use syd_check as check;
pub use syd_core as kernel;
pub use syd_crypto as crypto;
pub use syd_fleet as fleet;
pub use syd_net as net;
pub use syd_store as store;
pub use syd_trace as trace;
pub use syd_transport as transport;
pub use syd_types as types;
pub use syd_wire as wire;
