//! One-shot observability snapshot — a `sydtop`-style view of every
//! live span ring in the process.
//!
//! Each SyD node (and each transport backend) registers a
//! [`syd_trace::SpanRing`] when it boots; [`snapshot`] walks that
//! registry and returns per-ring counters plus process totals. The
//! [`Snapshot`] renders as an aligned text table, which is what
//! `sydd --stats` prints at shutdown:
//!
//! ```text
//! RING                  DEVICE  RECORDED  DROPPED  BUFFERED
//! node1                      1        42        0        42
//! transport-tcp-40533      max        17        0        17
//! TOTAL                               59        0        59
//! ```
//!
//! The snapshot is read-only: it does not drain the rings, so a
//! [`syd_trace::Collector`] can still assemble the buffered spans
//! afterwards.

use std::fmt;

use syd_trace::RingStats;

/// Point-in-time view of all live span rings in this process.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-ring counters, in registration order.
    pub rings: Vec<RingStats>,
}

impl Snapshot {
    /// Total spans ever recorded across all rings.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded).sum()
    }

    /// Total spans evicted before a drain (lossy-journal pressure).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// Total spans currently buffered and awaiting a collector drain.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.rings.iter().map(|r| r.buffered).sum()
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self
            .rings
            .iter()
            .map(|r| r.label.len())
            .chain([5])
            .max()
            .unwrap_or(5);
        writeln!(
            f,
            "{:<label_w$}  {:>6}  {:>8}  {:>7}  {:>8}",
            "RING", "DEVICE", "RECORDED", "DROPPED", "BUFFERED"
        )?;
        for r in &self.rings {
            // Transport rings use sentinel device ids near u64::MAX;
            // render those as "max"/"max-1" style markers instead of
            // twenty-digit numbers.
            let device = if r.device >= u64::MAX - 8 {
                let back = u64::MAX - r.device;
                if back == 0 {
                    "max".to_owned()
                } else {
                    format!("max-{back}")
                }
            } else {
                r.device.to_string()
            };
            writeln!(
                f,
                "{:<label_w$}  {:>6}  {:>8}  {:>7}  {:>8}",
                r.label, device, r.recorded, r.dropped, r.buffered
            )?;
        }
        write!(
            f,
            "{:<label_w$}  {:>6}  {:>8}  {:>7}  {:>8}",
            "TOTAL",
            "",
            self.recorded(),
            self.dropped(),
            self.buffered()
        )
    }
}

/// Capture a one-shot snapshot of every live span ring.
///
/// Rings whose owners have been dropped are pruned from the registry
/// lazily, so a long-lived process only ever sees its live nodes here.
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        rings: syd_trace::registry_stats(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // test code
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_table_with_totals() {
        let tracer = syd_trace::Tracer::new("obs-test-ring", 7);
        drop(tracer.span(syd_telemetry::names::SPAN_SCHEDULE));
        let snap = snapshot();
        assert!(snap.recorded() >= 1);
        let text = snap.to_string();
        assert!(text.starts_with("RING"));
        assert!(text.contains("obs-test-ring"));
        assert!(text.trim_end().lines().last().unwrap().starts_with("TOTAL"));
    }
}
