//! `sydd` — a SyD fleet host: one OS process carrying the directory
//! server and a calendar-equipped device, reachable over loopback TCP.
//!
//! Used by the `two_process_fleet` example (and the CI transport job) to
//! exercise the framed TCP backend across real process boundaries:
//!
//! ```text
//! $ sydd
//! READY <directory-addr-raw> <host-user-raw>
//! ```
//!
//! The daemon then blocks until its peer writes a line to stdin (or
//! closes it), runs the protocol invariant audit over its device, prints
//! `AUDIT_OK` (or `AUDIT_FAIL <reason>`) and exits. Exit status 0 means
//! the audit was clean.
//!
//! With `--stats`, the shutdown sequence additionally dumps a one-shot
//! [`syd::obs::snapshot`] of every live span ring (prefixed `STATS `
//! per line, so peers parsing stdout can skip it).

// Demo daemon: a host that cannot boot must abort loudly at startup.
#![allow(clippy::expect_used)]

use std::io::{BufRead, Write as _};
use std::sync::Arc;
use std::time::{Duration, Instant};

use syd::calendar::CalendarApp;
use syd::kernel::SydEnv;
use syd::net::Transport;
use syd::transport::FramedTcpTransport;

fn main() {
    let mut stats = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--stats" => stats = true,
            other => {
                eprintln!("sydd: unknown flag {other} (supported: --stats)");
                std::process::exit(2);
            }
        }
    }
    let transport: Arc<dyn Transport> = Arc::new(FramedTcpTransport::loopback());
    let env = match SydEnv::new_on(Arc::clone(&transport), None) {
        Ok(env) => env,
        Err(err) => {
            eprintln!("sydd: cannot start deployment: {err}");
            std::process::exit(2);
        }
    };
    let host = env
        .device("andy", "pw-andy")
        .expect("sydd: cannot mint host device");
    let calendar = CalendarApp::install(&host).expect("sydd: cannot install calendar");

    // Hand the rendezvous coordinates to the peer process.
    println!("READY {} {}", env.dir_addr().raw(), calendar.user().raw());
    std::io::stdout().flush().expect("sydd: stdout");

    // Serve until the peer signals shutdown (any line, or EOF).
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);

    // Quiesce: let in-flight negotiation steps release their locks, then
    // sweep stale sessions and audit.
    let deadline = Instant::now() + Duration::from_secs(2);
    while host.store().locks().held_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    host.sweep_stale_sessions(Duration::ZERO);
    if stats {
        for line in syd::obs::snapshot().to_string().lines() {
            println!("STATS {line}");
        }
    }
    let report = syd::check::audit([&host]);
    if report.ok() {
        println!("AUDIT_OK");
    } else {
        println!("AUDIT_FAIL\n{report}");
        std::process::exit(1);
    }
}
